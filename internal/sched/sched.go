// Package sched defines the common contract between scheduling algorithms:
// the Scheduler interface, the Schedule result type, and a validator that
// checks the two correctness invariants every schedule must satisfy —
// dependency order and per-slot, per-machine capacity.
package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"spear/internal/cluster"
	"spear/internal/dag"
)

// Schedule JSON documents are versioned by the "format" field. A document
// with no format field (0) is the original single-machine layout, as is an
// explicit FormatSingle; FormatMulti adds a machine index per placement.
// Loaders accept all three and reject anything newer with a precise error.
const (
	FormatSingle = 1
	FormatMulti  = 2
)

// CheckFormat validates a schedule document's format field.
func CheckFormat(format int) error {
	if format < 0 || format > FormatMulti {
		return fmt.Errorf("sched: unknown schedule format %d (this build understands formats up to %d)", format, FormatMulti)
	}
	return nil
}

// Placement records where and when a single task starts: the machine index
// into the cluster spec and the start slot. Its finish time is Start + task
// runtime. Machine is omitted from JSON when 0, so single-machine
// schedules serialize exactly as they did before machines existed.
type Placement struct {
	Task    dag.TaskID `json:"task"`
	Start   int64      `json:"start"`
	Machine int        `json:"machine,omitempty"`
}

// Schedule is the output of a scheduling algorithm for one job DAG.
type Schedule struct {
	// Format is the JSON document version (see FormatSingle/FormatMulti).
	// It is 0, and omitted, for single-machine schedules — the legacy
	// layout — and FormatMulti when placements carry machine indices.
	Format int `json:"format,omitempty"`
	// Algorithm names the scheduler that produced this schedule.
	Algorithm string `json:"algorithm"`
	// Placements holds one entry per task in the DAG.
	Placements []Placement `json:"placements"`
	// Makespan is the finish time of the last task (start times are
	// relative to 0).
	Makespan int64 `json:"makespan"`
	// Elapsed is the wall-clock time the scheduler spent producing the
	// schedule (serialized as nanoseconds). Used by the Fig. 6(b) and
	// Table I experiments.
	Elapsed time.Duration `json:"elapsedNanos"`
}

// LoadSchedule reads a schedule document previously serialized as JSON,
// accepting both the legacy single-machine layout and the current
// multi-machine one. Unknown format versions are rejected.
func LoadSchedule(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("sched: decode schedule: %w", err)
	}
	if err := CheckFormat(s.Format); err != nil {
		return nil, err
	}
	return &s, nil
}

// Scheduler is a dependency- and resource-aware scheduling algorithm.
// Implementations must be safe for sequential reuse across jobs; they need
// not be safe for concurrent use.
type Scheduler interface {
	// Name returns a short human-readable algorithm name ("Spear",
	// "Graphene", "Tetris", "SJF", "CP", ...).
	Name() string
	// Schedule computes a full schedule for the job on the cluster
	// described by spec. A one-machine spec is the classic single-box
	// setting; see cluster.Single.
	Schedule(g *dag.Graph, spec cluster.Spec) (*Schedule, error)
}

// ContextScheduler is a Scheduler whose search can be cancelled or
// deadline-bounded. Implementations check ctx at iteration or expansion
// boundaries; on cancellation they return the best incumbent schedule
// found so far together with an error wrapping ctx.Err(), so callers can
// both use the partial result and detect the cancellation with errors.Is.
// Plain Schedule is equivalent to ScheduleContext(context.Background(), ...).
type ContextScheduler interface {
	Scheduler
	// ScheduleContext computes a schedule, honoring ctx.
	ScheduleContext(ctx context.Context, g *dag.Graph, spec cluster.Spec) (*Schedule, error)
}

// ScheduleContext schedules with s honoring ctx when s supports
// cancellation, and falls back to a plain (uncancellable) Schedule call
// otherwise — after a fast-path check that ctx is still live.
func ScheduleContext(ctx context.Context, s Scheduler, g *dag.Graph, spec cluster.Spec) (*Schedule, error) {
	if cs, ok := s.(ContextScheduler); ok {
		return cs.ScheduleContext(ctx, g, spec)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Schedule(g, spec)
}

// Validation errors.
var (
	ErrMissingTask     = errors.New("sched: schedule is missing a task")
	ErrDuplicateTask   = errors.New("sched: task placed more than once")
	ErrNegativeStart   = errors.New("sched: task starts before time 0")
	ErrBadMachine      = errors.New("sched: placement names a machine outside the cluster spec")
	ErrDependencyOrder = errors.New("sched: task starts before a parent finishes")
	ErrOverCapacity    = errors.New("sched: schedule exceeds cluster capacity")
	ErrWrongMakespan   = errors.New("sched: recorded makespan does not match placements")
	ErrNilSchedule     = errors.New("sched: nil schedule")
)

// Validate checks that s is a correct schedule for g on the cluster
// described by spec: every task placed exactly once on a machine the spec
// names, no task starting before time 0 or before its parents finish,
// per-machine occupancy within that machine's capacity at every slot, and
// the recorded makespan consistent with the placements. Two tasks may
// overlap in time iff they run on different machines.
func Validate(g *dag.Graph, spec cluster.Spec, s *Schedule) error {
	if s == nil {
		return ErrNilSchedule
	}
	n := g.NumTasks()
	start := make([]int64, n)
	machine := make([]int, n)
	seen := make([]bool, n)
	for _, p := range s.Placements {
		if int(p.Task) < 0 || int(p.Task) >= n {
			return fmt.Errorf("%w: id %d out of range", ErrMissingTask, p.Task)
		}
		if seen[p.Task] {
			return fmt.Errorf("%w: task %d", ErrDuplicateTask, p.Task)
		}
		seen[p.Task] = true
		if p.Start < 0 {
			return fmt.Errorf("%w: task %d at %d", ErrNegativeStart, p.Task, p.Start)
		}
		if p.Machine < 0 || p.Machine >= len(spec) {
			return fmt.Errorf("%w: task %d on machine %d of %d", ErrBadMachine, p.Task, p.Machine, len(spec))
		}
		start[p.Task] = p.Start
		machine[p.Task] = p.Machine
	}
	for id := 0; id < n; id++ {
		if !seen[id] {
			return fmt.Errorf("%w: task %d", ErrMissingTask, id)
		}
	}

	var makespan int64
	for id := 0; id < n; id++ {
		finish := start[id] + g.Task(dag.TaskID(id)).Runtime
		if finish > makespan {
			makespan = finish
		}
		for _, parent := range g.Pred(dag.TaskID(id)) {
			parentFinish := start[parent] + g.Task(parent).Runtime
			if start[id] < parentFinish {
				return fmt.Errorf("%w: task %d starts at %d, parent %d finishes at %d",
					ErrDependencyOrder, id, start[id], parent, parentFinish)
			}
		}
	}
	if s.Makespan != makespan {
		return fmt.Errorf("%w: recorded %d, actual %d", ErrWrongMakespan, s.Makespan, makespan)
	}

	space, err := cluster.NewMulti(spec)
	if err != nil {
		return err
	}
	// Place in start order for stable error messages.
	order := make([]dag.TaskID, n)
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sort.Slice(order, func(i, j int) bool { return start[order[i]] < start[order[j]] })
	for _, id := range order {
		task := g.Task(id)
		if err := space.Place(machine[id], start[id], task.Demand, task.Runtime); err != nil {
			return fmt.Errorf("%w: task %d at %d: %v", ErrOverCapacity, id, start[id], err)
		}
	}
	return nil
}

// StartTimes returns the per-task start times indexed by TaskID. It assumes
// a schedule that has passed Validate.
func (s *Schedule) StartTimes(n int) []int64 {
	starts := make([]int64, n)
	for _, p := range s.Placements {
		if int(p.Task) >= 0 && int(p.Task) < n {
			starts[p.Task] = p.Start
		}
	}
	return starts
}

// Machines returns the per-task machine indices indexed by TaskID. It
// assumes a schedule that has passed Validate.
func (s *Schedule) Machines(n int) []int {
	machines := make([]int, n)
	for _, p := range s.Placements {
		if int(p.Task) >= 0 && int(p.Task) < n {
			machines[p.Task] = p.Machine
		}
	}
	return machines
}

// Gantt renders the schedule as an ASCII chart, one row per task ordered by
// start time, with the timeline scaled to at most width characters.
// Multi-machine schedules (FormatMulti) annotate each row with the task's
// machine index; single-machine output is unchanged.
func (s *Schedule) Gantt(g *dag.Graph, width int) string {
	if width < 10 {
		width = 10
	}
	if s.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / float64(s.Makespan)

	ps := make([]Placement, len(s.Placements))
	copy(ps, s.Placements)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Start != ps[j].Start {
			return ps[i].Start < ps[j].Start
		}
		return ps[i].Task < ps[j].Task
	})

	multi := s.Format == FormatMulti
	var b strings.Builder
	fmt.Fprintf(&b, "%s  makespan=%d\n", s.Algorithm, s.Makespan)
	for _, p := range ps {
		task := g.Task(p.Task)
		from := int(float64(p.Start) * scale)
		to := int(float64(p.Start+task.Runtime) * scale)
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		fmt.Fprintf(&b, "%-12s |%s%s%s| [%d,%d)",
			truncate(task.Name, 12),
			strings.Repeat(" ", from),
			strings.Repeat("#", to-from),
			strings.Repeat(" ", width-to),
			p.Start, p.Start+task.Runtime)
		if multi {
			fmt.Fprintf(&b, " m%d", p.Machine)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// truncate shortens s to at most n runes, replacing the tail with an
// ellipsis. It counts runes, not bytes: byte slicing would split multi-byte
// UTF-8 sequences and emit invalid output for non-ASCII task names.
func truncate(s string, n int) string {
	if utf8.RuneCountInString(s) <= n {
		return s
	}
	runes := []rune(s)
	return string(runes[:n-1]) + "…"
}
