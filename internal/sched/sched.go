// Package sched defines the common contract between scheduling algorithms:
// the Scheduler interface, the Schedule result type, and a validator that
// checks the two correctness invariants every schedule must satisfy —
// dependency order and per-slot capacity.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"spear/internal/cluster"
	"spear/internal/dag"
	"spear/internal/resource"
)

// Placement records when a single task starts. Its finish time is
// Start + task runtime.
type Placement struct {
	Task  dag.TaskID `json:"task"`
	Start int64      `json:"start"`
}

// Schedule is the output of a scheduling algorithm for one job DAG.
type Schedule struct {
	// Algorithm names the scheduler that produced this schedule.
	Algorithm string `json:"algorithm"`
	// Placements holds one entry per task in the DAG.
	Placements []Placement `json:"placements"`
	// Makespan is the finish time of the last task (start times are
	// relative to 0).
	Makespan int64 `json:"makespan"`
	// Elapsed is the wall-clock time the scheduler spent producing the
	// schedule (serialized as nanoseconds). Used by the Fig. 6(b) and
	// Table I experiments.
	Elapsed time.Duration `json:"elapsedNanos"`
}

// Scheduler is a dependency- and resource-aware scheduling algorithm.
// Implementations must be safe for sequential reuse across jobs; they need
// not be safe for concurrent use.
type Scheduler interface {
	// Name returns a short human-readable algorithm name ("Spear",
	// "Graphene", "Tetris", "SJF", "CP", ...).
	Name() string
	// Schedule computes a full schedule for the job on a cluster with the
	// given capacity.
	Schedule(g *dag.Graph, capacity resource.Vector) (*Schedule, error)
}

// ContextScheduler is a Scheduler whose search can be cancelled or
// deadline-bounded. Implementations check ctx at iteration or expansion
// boundaries; on cancellation they return the best incumbent schedule
// found so far together with an error wrapping ctx.Err(), so callers can
// both use the partial result and detect the cancellation with errors.Is.
// Plain Schedule is equivalent to ScheduleContext(context.Background(), ...).
type ContextScheduler interface {
	Scheduler
	// ScheduleContext computes a schedule, honoring ctx.
	ScheduleContext(ctx context.Context, g *dag.Graph, capacity resource.Vector) (*Schedule, error)
}

// ScheduleContext schedules with s honoring ctx when s supports
// cancellation, and falls back to a plain (uncancellable) Schedule call
// otherwise — after a fast-path check that ctx is still live.
func ScheduleContext(ctx context.Context, s Scheduler, g *dag.Graph, capacity resource.Vector) (*Schedule, error) {
	if cs, ok := s.(ContextScheduler); ok {
		return cs.ScheduleContext(ctx, g, capacity)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Schedule(g, capacity)
}

// Validation errors.
var (
	ErrMissingTask     = errors.New("sched: schedule is missing a task")
	ErrDuplicateTask   = errors.New("sched: task placed more than once")
	ErrNegativeStart   = errors.New("sched: task starts before time 0")
	ErrDependencyOrder = errors.New("sched: task starts before a parent finishes")
	ErrOverCapacity    = errors.New("sched: schedule exceeds cluster capacity")
	ErrWrongMakespan   = errors.New("sched: recorded makespan does not match placements")
	ErrNilSchedule     = errors.New("sched: nil schedule")
)

// Validate checks that s is a correct schedule for g on a cluster with the
// given capacity: every task placed exactly once, no task starting before
// time 0 or before its parents finish, occupancy within capacity at every
// slot, and the recorded makespan consistent with the placements.
func Validate(g *dag.Graph, capacity resource.Vector, s *Schedule) error {
	if s == nil {
		return ErrNilSchedule
	}
	n := g.NumTasks()
	start := make([]int64, n)
	seen := make([]bool, n)
	for _, p := range s.Placements {
		if int(p.Task) < 0 || int(p.Task) >= n {
			return fmt.Errorf("%w: id %d out of range", ErrMissingTask, p.Task)
		}
		if seen[p.Task] {
			return fmt.Errorf("%w: task %d", ErrDuplicateTask, p.Task)
		}
		seen[p.Task] = true
		if p.Start < 0 {
			return fmt.Errorf("%w: task %d at %d", ErrNegativeStart, p.Task, p.Start)
		}
		start[p.Task] = p.Start
	}
	for id := 0; id < n; id++ {
		if !seen[id] {
			return fmt.Errorf("%w: task %d", ErrMissingTask, id)
		}
	}

	var makespan int64
	for id := 0; id < n; id++ {
		finish := start[id] + g.Task(dag.TaskID(id)).Runtime
		if finish > makespan {
			makespan = finish
		}
		for _, parent := range g.Pred(dag.TaskID(id)) {
			parentFinish := start[parent] + g.Task(parent).Runtime
			if start[id] < parentFinish {
				return fmt.Errorf("%w: task %d starts at %d, parent %d finishes at %d",
					ErrDependencyOrder, id, start[id], parent, parentFinish)
			}
		}
	}
	if s.Makespan != makespan {
		return fmt.Errorf("%w: recorded %d, actual %d", ErrWrongMakespan, s.Makespan, makespan)
	}

	space, err := cluster.NewSpace(capacity)
	if err != nil {
		return err
	}
	// Place in start order for stable error messages.
	order := make([]dag.TaskID, n)
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sort.Slice(order, func(i, j int) bool { return start[order[i]] < start[order[j]] })
	for _, id := range order {
		task := g.Task(id)
		if err := space.Place(start[id], task.Demand, task.Runtime); err != nil {
			return fmt.Errorf("%w: task %d at %d: %v", ErrOverCapacity, id, start[id], err)
		}
	}
	return nil
}

// StartTimes returns the per-task start times indexed by TaskID. It assumes
// a schedule that has passed Validate.
func (s *Schedule) StartTimes(n int) []int64 {
	starts := make([]int64, n)
	for _, p := range s.Placements {
		if int(p.Task) >= 0 && int(p.Task) < n {
			starts[p.Task] = p.Start
		}
	}
	return starts
}

// Gantt renders the schedule as an ASCII chart, one row per task ordered by
// start time, with the timeline scaled to at most width characters.
func (s *Schedule) Gantt(g *dag.Graph, width int) string {
	if width < 10 {
		width = 10
	}
	if s.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / float64(s.Makespan)

	ps := make([]Placement, len(s.Placements))
	copy(ps, s.Placements)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Start != ps[j].Start {
			return ps[i].Start < ps[j].Start
		}
		return ps[i].Task < ps[j].Task
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%s  makespan=%d\n", s.Algorithm, s.Makespan)
	for _, p := range ps {
		task := g.Task(p.Task)
		from := int(float64(p.Start) * scale)
		to := int(float64(p.Start+task.Runtime) * scale)
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		fmt.Fprintf(&b, "%-12s |%s%s%s| [%d,%d)\n",
			truncate(task.Name, 12),
			strings.Repeat(" ", from),
			strings.Repeat("#", to-from),
			strings.Repeat(" ", width-to),
			p.Start, p.Start+task.Runtime)
	}
	return b.String()
}

// truncate shortens s to at most n runes, replacing the tail with an
// ellipsis. It counts runes, not bytes: byte slicing would split multi-byte
// UTF-8 sequences and emit invalid output for non-ASCII task names.
func truncate(s string, n int) string {
	if utf8.RuneCountInString(s) <= n {
		return s
	}
	runes := []rune(s)
	return string(runes[:n-1]) + "…"
}
