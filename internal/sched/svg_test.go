package sched

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestWriteSVG(t *testing.T) {
	g, s := validChain(t)
	var sb strings.Builder
	if err := s.WriteSVG(&sb, g, 400, 16); err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "makespan 5", "rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	// One rect per task.
	if got := strings.Count(out, "<rect"); got != 2 {
		t.Errorf("rects = %d, want 2", got)
	}
}

func TestWriteSVGClampsAndEscapes(t *testing.T) {
	g, s := validChain(t)
	var sb strings.Builder
	// Tiny dimensions are clamped rather than producing degenerate output.
	if err := s.WriteSVG(&sb, g, 10, 2); err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	if !strings.Contains(sb.String(), `width="200"`) {
		t.Errorf("width not clamped")
	}

	s.Algorithm = `<evil>&"`
	sb.Reset()
	if err := s.WriteSVG(&sb, g, 300, 14); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<evil>") {
		t.Errorf("XML not escaped")
	}
}

func TestWriteSVGEmpty(t *testing.T) {
	g, _ := validChain(t)
	empty := &Schedule{}
	var sb strings.Builder
	if err := empty.WriteSVG(&sb, g, 300, 14); err == nil {
		t.Error("empty schedule accepted")
	}
}
