package sched

import (
	"fmt"
	"sort"

	"spear/internal/cluster"
	"spear/internal/dag"
)

// MachineUtilization is one machine's share of a schedule's work.
type MachineUtilization struct {
	// Machine names the machine (from the cluster spec).
	Machine string
	// PerDim is, per resource dimension, the occupied fraction of this
	// machine's capacity x makespan rectangle, in [0, 1].
	PerDim []float64
	// Mean averages PerDim.
	Mean float64
	// Tasks counts placements routed to this machine.
	Tasks int
}

// Utilization summarizes how densely a schedule packs the cluster.
type Utilization struct {
	// PerDim is, per resource dimension, the occupied fraction of the
	// aggregate capacity x makespan rectangle, in [0, 1].
	PerDim []float64
	// Mean averages PerDim.
	Mean float64
	// IdleSlots counts time slots in [0, makespan) where the whole cluster
	// is completely empty (possible only through scheduler idling, since a
	// valid schedule's makespan is tight).
	IdleSlots int64
	// PerMachine breaks the utilization down by machine, in spec order.
	// For a one-machine spec it has a single entry equal to the aggregate.
	PerMachine []MachineUtilization
}

// ComputeUtilization reports the resource utilization of a schedule that
// has passed Validate against the same spec, both aggregated across the
// cluster and per machine.
func ComputeUtilization(g *dag.Graph, spec cluster.Spec, s *Schedule) (Utilization, error) {
	if s == nil || s.Makespan <= 0 {
		return Utilization{}, fmt.Errorf("sched: cannot compute utilization of an empty schedule")
	}
	if err := spec.Validate(); err != nil {
		return Utilization{}, err
	}
	if spec.Dims() != g.Dims() {
		return Utilization{}, fmt.Errorf("sched: spec has %d dims, job has %d", spec.Dims(), g.Dims())
	}
	dims := g.Dims()
	total := spec.Total()
	work := make([]int64, dims)
	perMachineWork := make([][]int64, len(spec))
	perMachineTasks := make([]int, len(spec))
	for i := range perMachineWork {
		perMachineWork[i] = make([]int64, dims)
	}
	for _, p := range s.Placements {
		task := g.Task(p.Task)
		if p.Machine < 0 || p.Machine >= len(spec) {
			return Utilization{}, fmt.Errorf("%w: task %d on machine %d of %d", ErrBadMachine, p.Task, p.Machine, len(spec))
		}
		perMachineTasks[p.Machine]++
		for d := 0; d < dims; d++ {
			work[d] += task.Runtime * task.Demand[d]
			perMachineWork[p.Machine][d] += task.Runtime * task.Demand[d]
		}
	}

	u := Utilization{PerDim: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		u.PerDim[d] = float64(work[d]) / float64(total[d]*s.Makespan)
		u.Mean += u.PerDim[d]
	}
	u.Mean /= float64(dims)

	u.PerMachine = make([]MachineUtilization, len(spec))
	for i, m := range spec {
		mu := MachineUtilization{Machine: m.Name, PerDim: make([]float64, dims), Tasks: perMachineTasks[i]}
		for d := 0; d < dims; d++ {
			mu.PerDim[d] = float64(perMachineWork[i][d]) / float64(m.Capacity[d]*s.Makespan)
			mu.Mean += mu.PerDim[d]
		}
		mu.Mean /= float64(dims)
		u.PerMachine[i] = mu
	}

	// Sweep the busy intervals to count fully idle slots. The sweep merges
	// the placement intervals instead of materializing a per-slot bitmap:
	// its cost is O(tasks log tasks) regardless of the recorded makespan, so
	// a corrupt multi-billion Makespan in a JSON-loaded schedule cannot OOM
	// the process — the worst it can do is inflate IdleSlots.
	busy := make([]busyInterval, 0, len(s.Placements))
	for _, p := range s.Placements {
		task := g.Task(p.Task)
		start, end := p.Start, p.Start+task.Runtime
		if start < 0 {
			start = 0
		}
		if end > s.Makespan {
			end = s.Makespan
		}
		if start < end {
			busy = append(busy, busyInterval{start, end})
		}
	}
	sort.Slice(busy, func(i, j int) bool {
		if busy[i].start != busy[j].start {
			return busy[i].start < busy[j].start
		}
		return busy[i].end < busy[j].end
	})
	var covered, frontier int64
	for _, iv := range busy {
		if iv.end <= frontier {
			continue
		}
		if iv.start > frontier {
			frontier = iv.start
		}
		covered += iv.end - frontier
		frontier = iv.end
	}
	u.IdleSlots = s.Makespan - covered
	return u, nil
}

// busyInterval is one half-open [start, end) busy span of the cluster.
type busyInterval struct{ start, end int64 }
