package sched

import (
	"fmt"
	"sort"

	"spear/internal/dag"
	"spear/internal/resource"
)

// Utilization summarizes how densely a schedule packs the cluster.
type Utilization struct {
	// PerDim is, per resource dimension, the occupied fraction of the
	// capacity x makespan rectangle, in [0, 1].
	PerDim []float64
	// Mean averages PerDim.
	Mean float64
	// IdleSlots counts time slots in [0, makespan) where the cluster is
	// completely empty (possible only through scheduler idling, since a
	// valid schedule's makespan is tight).
	IdleSlots int64
}

// ComputeUtilization reports the resource utilization of a schedule that
// has passed Validate.
func ComputeUtilization(g *dag.Graph, capacity resource.Vector, s *Schedule) (Utilization, error) {
	if s == nil || s.Makespan <= 0 {
		return Utilization{}, fmt.Errorf("sched: cannot compute utilization of an empty schedule")
	}
	if capacity.Dims() != g.Dims() {
		return Utilization{}, resource.ErrDimensionMismatch
	}
	dims := g.Dims()
	work := make([]int64, dims)
	for _, p := range s.Placements {
		task := g.Task(p.Task)
		for d := 0; d < dims; d++ {
			work[d] += task.Runtime * task.Demand[d]
		}
	}

	u := Utilization{PerDim: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		u.PerDim[d] = float64(work[d]) / float64(capacity[d]*s.Makespan)
		u.Mean += u.PerDim[d]
	}
	u.Mean /= float64(dims)

	// Sweep the busy intervals to count fully idle slots. The sweep merges
	// the placement intervals instead of materializing a per-slot bitmap:
	// its cost is O(tasks log tasks) regardless of the recorded makespan, so
	// a corrupt multi-billion Makespan in a JSON-loaded schedule cannot OOM
	// the process — the worst it can do is inflate IdleSlots.
	busy := make([]busyInterval, 0, len(s.Placements))
	for _, p := range s.Placements {
		task := g.Task(p.Task)
		start, end := p.Start, p.Start+task.Runtime
		if start < 0 {
			start = 0
		}
		if end > s.Makespan {
			end = s.Makespan
		}
		if start < end {
			busy = append(busy, busyInterval{start, end})
		}
	}
	sort.Slice(busy, func(i, j int) bool {
		if busy[i].start != busy[j].start {
			return busy[i].start < busy[j].start
		}
		return busy[i].end < busy[j].end
	})
	var covered, frontier int64
	for _, iv := range busy {
		if iv.end <= frontier {
			continue
		}
		if iv.start > frontier {
			frontier = iv.start
		}
		covered += iv.end - frontier
		frontier = iv.end
	}
	u.IdleSlots = s.Makespan - covered
	return u, nil
}

// busyInterval is one half-open [start, end) busy span of the cluster.
type busyInterval struct{ start, end int64 }
