package sched

import (
	"fmt"

	"spear/internal/dag"
	"spear/internal/resource"
)

// Utilization summarizes how densely a schedule packs the cluster.
type Utilization struct {
	// PerDim is, per resource dimension, the occupied fraction of the
	// capacity x makespan rectangle, in [0, 1].
	PerDim []float64
	// Mean averages PerDim.
	Mean float64
	// IdleSlots counts time slots in [0, makespan) where the cluster is
	// completely empty (possible only through scheduler idling, since a
	// valid schedule's makespan is tight).
	IdleSlots int64
}

// ComputeUtilization reports the resource utilization of a schedule that
// has passed Validate.
func ComputeUtilization(g *dag.Graph, capacity resource.Vector, s *Schedule) (Utilization, error) {
	if s == nil || s.Makespan <= 0 {
		return Utilization{}, fmt.Errorf("sched: cannot compute utilization of an empty schedule")
	}
	if capacity.Dims() != g.Dims() {
		return Utilization{}, resource.ErrDimensionMismatch
	}
	dims := g.Dims()
	work := make([]int64, dims)
	for _, p := range s.Placements {
		task := g.Task(p.Task)
		for d := 0; d < dims; d++ {
			work[d] += task.Runtime * task.Demand[d]
		}
	}

	u := Utilization{PerDim: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		u.PerDim[d] = float64(work[d]) / float64(capacity[d]*s.Makespan)
		u.Mean += u.PerDim[d]
	}
	u.Mean /= float64(dims)

	// Sweep the busy intervals to count fully idle slots.
	busy := make([]bool, s.Makespan)
	for _, p := range s.Placements {
		task := g.Task(p.Task)
		for t := p.Start; t < p.Start+task.Runtime && t < s.Makespan; t++ {
			busy[t] = true
		}
	}
	for _, b := range busy {
		if !b {
			u.IdleSlots++
		}
	}
	return u, nil
}
