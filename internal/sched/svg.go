package sched

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"spear/internal/dag"
)

// svgPalette cycles task colours; chosen for contrast on white.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// WriteSVG renders the schedule as a standalone SVG Gantt chart: one row
// per task (sorted by start time), the x-axis in schedule time, with a
// labelled bar per task. Width and rowHeight are in pixels; sensible
// minimums are enforced.
func (s *Schedule) WriteSVG(w io.Writer, g *dag.Graph, width, rowHeight int) error {
	if s.Makespan <= 0 || len(s.Placements) == 0 {
		return fmt.Errorf("sched: cannot render an empty schedule")
	}
	if width < 200 {
		width = 200
	}
	if rowHeight < 12 {
		rowHeight = 12
	}
	const labelW = 110
	const topPad = 28
	chartW := width - labelW

	ps := make([]Placement, len(s.Placements))
	copy(ps, s.Placements)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Start != ps[j].Start {
			return ps[i].Start < ps[j].Start
		}
		return ps[i].Task < ps[j].Task
	})

	height := topPad + rowHeight*len(ps) + 24
	scale := float64(chartW) / float64(s.Makespan)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="4" y="16" font-size="13">%s — makespan %d</text>`+"\n", escapeXML(s.Algorithm), s.Makespan)

	// Vertical gridlines at ~10 divisions.
	step := s.Makespan / 10
	if step < 1 {
		step = 1
	}
	for t := int64(0); t <= s.Makespan; t += step {
		x := labelW + int(float64(t)*scale)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n", x, topPad, x, height-20)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#666">%d</text>`+"\n", x+2, height-8, t)
	}

	multi := s.Format == FormatMulti
	for i, p := range ps {
		task := g.Task(p.Task)
		y := topPad + i*rowHeight
		x := labelW + int(float64(p.Start)*scale)
		barW := int(float64(task.Runtime) * scale)
		if barW < 1 {
			barW = 1
		}
		color := svgPalette[int(p.Task)%len(svgPalette)]
		machineTag := ""
		if multi {
			machineTag = fmt.Sprintf(" m%d", p.Machine)
		}
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`+"\n", y+rowHeight-4, escapeXML(truncate(task.Name, 14)))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333"><title>%s [%d,%d)%s demand %s</title></rect>`+"\n",
			x, y+2, barW, rowHeight-4, color, escapeXML(task.Name), p.Start, p.Start+task.Runtime, machineTag, escapeXML(task.Demand.String()))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
