package sched

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"spear/internal/cluster"
	"spear/internal/dag"
	"spear/internal/resource"
)

// twoTaskJob builds two independent tasks with the given runtime/demand.
func twoTaskJob(t *testing.T, runtime int64, demand resource.Vector) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder(demand.Dims())
	b.AddTask("a", runtime, demand.Clone())
	b.AddTask("b", runtime, demand.Clone())
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidateSameMachineOverlapRejected(t *testing.T) {
	// Two demand-6 tasks overlap in time. On one 10-capacity machine that
	// exceeds capacity; spreading them across two such machines is legal.
	g := twoTaskJob(t, 5, resource.Of(6))
	spec := cluster.Uniform(2, resource.Of(10))
	overlap := &Schedule{
		Format:    FormatMulti,
		Algorithm: "test",
		Placements: []Placement{
			{Task: 0, Start: 0, Machine: 0},
			{Task: 1, Start: 2, Machine: 0},
		},
		Makespan: 7,
	}
	if err := Validate(g, spec, overlap); !errors.Is(err, ErrOverCapacity) {
		t.Errorf("same-machine overlap: err = %v, want ErrOverCapacity", err)
	}

	crossMachine := &Schedule{
		Format:    FormatMulti,
		Algorithm: "test",
		Placements: []Placement{
			{Task: 0, Start: 0, Machine: 0},
			{Task: 1, Start: 0, Machine: 1},
		},
		Makespan: 5,
	}
	if err := Validate(g, spec, crossMachine); err != nil {
		t.Errorf("cross-machine same interval: %v", err)
	}
}

func TestValidateRejectsUnknownMachine(t *testing.T) {
	g := twoTaskJob(t, 3, resource.Of(2))
	spec := cluster.Uniform(2, resource.Of(10))
	for _, machine := range []int{-1, 2} {
		s := &Schedule{
			Algorithm: "test",
			Placements: []Placement{
				{Task: 0, Start: 0, Machine: machine},
				{Task: 1, Start: 0, Machine: 0},
			},
			Makespan: 3,
		}
		if err := Validate(g, spec, s); !errors.Is(err, ErrBadMachine) {
			t.Errorf("machine %d: err = %v, want ErrBadMachine", machine, err)
		}
	}
}

func TestComputeUtilizationPerMachine(t *testing.T) {
	// Machine 0 runs task a (5x6 work), machine 1 runs task b (5x6 work)
	// concurrently: each machine is 60% busy per dim, and so is the
	// aggregate.
	g := twoTaskJob(t, 5, resource.Of(6))
	spec := cluster.Uniform(2, resource.Of(10))
	s := &Schedule{
		Format:    FormatMulti,
		Algorithm: "test",
		Placements: []Placement{
			{Task: 0, Start: 0, Machine: 0},
			{Task: 1, Start: 0, Machine: 1},
		},
		Makespan: 5,
	}
	if err := Validate(g, spec, s); err != nil {
		t.Fatal(err)
	}
	u, err := ComputeUtilization(g, spec, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Mean-0.6) > 1e-12 {
		t.Errorf("aggregate mean = %v, want 0.6", u.Mean)
	}
	if len(u.PerMachine) != 2 {
		t.Fatalf("PerMachine has %d entries, want 2", len(u.PerMachine))
	}
	for i, mu := range u.PerMachine {
		if mu.Machine != spec[i].Name {
			t.Errorf("machine %d named %q, want %q", i, mu.Machine, spec[i].Name)
		}
		if mu.Tasks != 1 {
			t.Errorf("machine %d ran %d tasks, want 1", i, mu.Tasks)
		}
		if math.Abs(mu.Mean-0.6) > 1e-12 {
			t.Errorf("machine %d mean = %v, want 0.6", i, mu.Mean)
		}
	}

	// Skewed placement: both tasks on machine 0, serially. Machine 0 is 60%
	// busy over the doubled makespan, machine 1 idle, aggregate 30%.
	skew := &Schedule{
		Format:    FormatMulti,
		Algorithm: "test",
		Placements: []Placement{
			{Task: 0, Start: 0, Machine: 0},
			{Task: 1, Start: 5, Machine: 0},
		},
		Makespan: 10,
	}
	u, err = ComputeUtilization(g, spec, skew)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Mean-0.3) > 1e-12 {
		t.Errorf("aggregate mean = %v, want 0.3", u.Mean)
	}
	if math.Abs(u.PerMachine[0].Mean-0.6) > 1e-12 || u.PerMachine[0].Tasks != 2 {
		t.Errorf("machine 0: mean = %v tasks = %d, want 0.6 and 2", u.PerMachine[0].Mean, u.PerMachine[0].Tasks)
	}
	if u.PerMachine[1].Mean != 0 || u.PerMachine[1].Tasks != 0 {
		t.Errorf("machine 1: mean = %v tasks = %d, want idle", u.PerMachine[1].Mean, u.PerMachine[1].Tasks)
	}
}

func TestScheduleJSONFormatVersioning(t *testing.T) {
	// A single-machine schedule serializes without format or machine keys —
	// byte-compatible with the pre-versioning encoding.
	single := &Schedule{
		Algorithm:  "test",
		Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 5}},
		Makespan:   10,
	}
	data, err := json.Marshal(single)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"format"`) || strings.Contains(string(data), `"machine"`) {
		t.Errorf("single-machine JSON leaks versioning fields: %s", data)
	}

	loaded, err := LoadSchedule(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Format != 0 || len(loaded.Placements) != 2 {
		t.Errorf("legacy document loaded as format %d with %d placements", loaded.Format, len(loaded.Placements))
	}

	// Multi-machine schedules round-trip their machine indices.
	multi := &Schedule{
		Format:     FormatMulti,
		Algorithm:  "test",
		Placements: []Placement{{Task: 0, Start: 0, Machine: 1}},
		Makespan:   5,
	}
	data, err = json.Marshal(multi)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err = LoadSchedule(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Format != FormatMulti || loaded.Placements[0].Machine != 1 {
		t.Errorf("multi document lost versioning: %+v", loaded)
	}

	// Unknown future formats fail with a precise error.
	if _, err := LoadSchedule(strings.NewReader(`{"format": 9, "algorithm": "x"}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown schedule format 9") {
		t.Errorf("future format: err = %v, want unknown-format error", err)
	}
	if err := CheckFormat(FormatMulti); err != nil {
		t.Errorf("CheckFormat(FormatMulti) = %v", err)
	}
	if err := CheckFormat(-1); err == nil {
		t.Error("CheckFormat(-1) accepted")
	}
}

func TestGanttAnnotatesMachines(t *testing.T) {
	g := twoTaskJob(t, 5, resource.Of(6))
	multi := &Schedule{
		Format:    FormatMulti,
		Algorithm: "test",
		Placements: []Placement{
			{Task: 0, Start: 0, Machine: 0},
			{Task: 1, Start: 0, Machine: 1},
		},
		Makespan: 5,
	}
	if out := multi.Gantt(g, 20); !strings.Contains(out, " m1") {
		t.Errorf("multi-machine Gantt lacks machine tags:\n%s", out)
	}
	single := &Schedule{
		Algorithm:  "test",
		Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 5}},
		Makespan:   10,
	}
	if out := single.Gantt(g, 20); strings.Contains(out, " m0") {
		t.Errorf("single-machine Gantt grew machine tags:\n%s", out)
	}
}
