package sched

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"spear/internal/cluster"
	"spear/internal/dag"
	"spear/internal/resource"
)

func TestComputeUtilization(t *testing.T) {
	// Two parallel tasks exactly filling a (2)-capacity cluster for 4
	// ticks: utilization 1.0, no idle slots.
	b := dag.NewBuilder(1)
	b.AddTask("x", 4, resource.Of(1))
	b.AddTask("y", 4, resource.Of(1))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{
		Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 0}},
		Makespan:   4,
	}
	capacity := resource.Of(2)
	if err := Validate(g, cluster.Single(capacity), s); err != nil {
		t.Fatal(err)
	}
	u, err := ComputeUtilization(g, cluster.Single(capacity), s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.PerDim[0]-1) > 1e-12 || math.Abs(u.Mean-1) > 1e-12 {
		t.Errorf("utilization = %+v, want 1.0", u)
	}
	if u.IdleSlots != 0 {
		t.Errorf("IdleSlots = %d", u.IdleSlots)
	}
}

func TestComputeUtilizationHalf(t *testing.T) {
	// One task using half the capacity for the whole makespan.
	b := dag.NewBuilder(2)
	b.AddTask("x", 5, resource.Of(5, 10))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{Placements: []Placement{{Task: 0, Start: 0}}, Makespan: 5}
	u, err := ComputeUtilization(g, cluster.Single(resource.Of(10, 10)), s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.PerDim[0]-0.5) > 1e-12 || math.Abs(u.PerDim[1]-1.0) > 1e-12 {
		t.Errorf("PerDim = %v", u.PerDim)
	}
	if math.Abs(u.Mean-0.75) > 1e-12 {
		t.Errorf("Mean = %v", u.Mean)
	}
}

func TestComputeUtilizationErrors(t *testing.T) {
	g := twoTaskChain(t)
	if _, err := ComputeUtilization(g, cluster.Single(resource.Of(5)), nil); err == nil {
		t.Error("nil schedule accepted")
	}
	s := &Schedule{Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 3}}, Makespan: 5}
	if _, err := ComputeUtilization(g, cluster.Single(resource.Of(5, 5)), s); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestComputeUtilizationIdleGaps(t *testing.T) {
	// a at [0,3), b at [5,7): slots 3 and 4 are fully idle. (Not a
	// Validate-tight schedule — utilization is also used on hand-edited
	// schedules.)
	g := twoTaskChain(t)
	s := &Schedule{Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 5}}, Makespan: 7}
	u, err := ComputeUtilization(g, cluster.Single(resource.Of(5)), s)
	if err != nil {
		t.Fatal(err)
	}
	if u.IdleSlots != 2 {
		t.Errorf("IdleSlots = %d, want 2", u.IdleSlots)
	}
}

func TestComputeUtilizationCorruptMakespanNoOOM(t *testing.T) {
	// Regression: the idle-slot sweep used to allocate a []bool of length
	// Makespan, so a corrupt multi-billion makespan in an untrusted
	// JSON-loaded schedule would OOM the process. The interval sweep keeps
	// the cost proportional to the placement count.
	g := twoTaskChain(t)
	crafted := `{
		"algorithm": "corrupt",
		"placements": [{"task": 0, "start": 0}, {"task": 1, "start": 3}],
		"makespan": 4000000000000
	}`
	var s Schedule
	if err := json.Unmarshal([]byte(crafted), &s); err != nil {
		t.Fatal(err)
	}
	u, err := ComputeUtilization(g, cluster.Single(resource.Of(5)), &s)
	if err != nil {
		t.Fatal(err)
	}
	// Tasks cover [0,3) and [3,5): 5 busy slots out of the claimed 4e12.
	if want := int64(4000000000000 - 5); u.IdleSlots != want {
		t.Errorf("IdleSlots = %d, want %d", u.IdleSlots, want)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	_, s := validChain(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"algorithm"`, `"placements"`, `"makespan"`, `"task"`, `"start"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %s: %s", key, data)
		}
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Makespan != s.Makespan || len(back.Placements) != len(s.Placements) || back.Algorithm != s.Algorithm {
		t.Errorf("round trip mismatch: %+v", back)
	}
}
