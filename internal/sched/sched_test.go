package sched

import (
	"errors"
	"strings"
	"testing"
	"unicode/utf8"

	"spear/internal/cluster"
	"spear/internal/dag"
	"spear/internal/resource"
)

// twoTaskChain builds a -> b with runtimes 3 and 2.
func twoTaskChain(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder(1)
	a := b.AddTask("a", 3, resource.Of(4))
	bb := b.AddTask("b", 2, resource.Of(4))
	b.AddDep(a, bb)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func validChain(t *testing.T) (*dag.Graph, *Schedule) {
	g := twoTaskChain(t)
	return g, &Schedule{
		Algorithm:  "test",
		Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 3}},
		Makespan:   5,
	}
}

func TestValidateAcceptsCorrectSchedule(t *testing.T) {
	g, s := validChain(t)
	if err := Validate(g, cluster.Single(resource.Of(5)), s); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	g, _ := validChain(t)
	capacity := resource.Of(5)
	tests := []struct {
		name string
		s    *Schedule
		want error
	}{
		{"nil schedule", nil, ErrNilSchedule},
		{"missing task", &Schedule{Placements: []Placement{{Task: 0, Start: 0}}, Makespan: 3}, ErrMissingTask},
		{"unknown task", &Schedule{Placements: []Placement{{Task: 0, Start: 0}, {Task: 7, Start: 3}}, Makespan: 5}, ErrMissingTask},
		{"duplicate task", &Schedule{Placements: []Placement{{Task: 0, Start: 0}, {Task: 0, Start: 3}}, Makespan: 5}, ErrDuplicateTask},
		{"negative start", &Schedule{Placements: []Placement{{Task: 0, Start: -1}, {Task: 1, Start: 3}}, Makespan: 5}, ErrNegativeStart},
		{"dependency violated", &Schedule{Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 2}}, Makespan: 4}, ErrDependencyOrder},
		{"wrong makespan", &Schedule{Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 3}}, Makespan: 9}, ErrWrongMakespan},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Validate(g, cluster.Single(capacity), tt.s); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestValidateCapacityViolation(t *testing.T) {
	// Two independent tasks that together exceed capacity but are scheduled
	// concurrently.
	b := dag.NewBuilder(1)
	b.AddTask("x", 3, resource.Of(4))
	b.AddTask("y", 3, resource.Of(4))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{
		Placements: []Placement{{Task: 0, Start: 0}, {Task: 1, Start: 1}},
		Makespan:   4,
	}
	if err := Validate(g, cluster.Single(resource.Of(5)), s); !errors.Is(err, ErrOverCapacity) {
		t.Errorf("err = %v, want ErrOverCapacity", err)
	}
	// With enough capacity the same schedule is fine.
	if err := Validate(g, cluster.Single(resource.Of(8)), s); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
}

func TestStartTimes(t *testing.T) {
	_, s := validChain(t)
	starts := s.StartTimes(2)
	if starts[0] != 0 || starts[1] != 3 {
		t.Errorf("StartTimes = %v", starts)
	}
	// Out-of-range placements are ignored rather than panicking.
	s.Placements = append(s.Placements, Placement{Task: 99, Start: 1})
	_ = s.StartTimes(2)
}

func TestGantt(t *testing.T) {
	g, s := validChain(t)
	out := s.Gantt(g, 20)
	if !strings.Contains(out, "makespan=5") {
		t.Errorf("missing makespan: %q", out)
	}
	for _, name := range []string{"a", "b"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing task %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "#") {
		t.Errorf("missing bars:\n%s", out)
	}
	// Rows appear in start order: "a" row before "b" row.
	if strings.Index(out, "a ") > strings.Index(out, "b ") {
		t.Errorf("rows out of order:\n%s", out)
	}
}

func TestGanttEdgeCases(t *testing.T) {
	g, s := validChain(t)
	// Tiny width is clamped.
	if out := s.Gantt(g, 1); !strings.Contains(out, "#") {
		t.Errorf("clamped width lost bars:\n%s", out)
	}
	empty := &Schedule{Algorithm: "x"}
	if out := empty.Gantt(g, 20); !strings.Contains(out, "empty") {
		t.Errorf("empty schedule rendering: %q", out)
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 12); got != "short" {
		t.Errorf("truncate short = %q", got)
	}
	if got := truncate("averylongtaskname", 8); len([]rune(got)) > 8 {
		t.Errorf("truncate long = %q (len %d)", got, len(got))
	}
}

func TestTruncateMultiByte(t *testing.T) {
	// Regression: truncate used to slice bytes, splitting multi-byte UTF-8
	// runes of non-ASCII task names and emitting invalid output.
	name := "データ処理タスク長い名前" // 12 runes, 36 bytes
	got := truncate(name, 8)
	if !utf8.ValidString(got) {
		t.Errorf("truncate produced invalid UTF-8: %q", got)
	}
	if n := utf8.RuneCountInString(got); n != 8 {
		t.Errorf("truncate to 8 runes produced %d runes: %q", n, got)
	}
	if want := "データ処理タス" /* 7 runes */ + "…"; got != want {
		t.Errorf("truncate = %q, want %q", got, want)
	}
	// A 12-rune name fits in 12 exactly — no truncation even though it is
	// 36 bytes long.
	if got := truncate(name, 12); got != name {
		t.Errorf("12-rune name truncated: %q", got)
	}
}

func TestGanttMultiByteNames(t *testing.T) {
	b := dag.NewBuilder(1)
	first := b.AddTask("長時間実行されるマップタスク", 3, resource.Of(1)) // > 12 runes, forces truncation
	second := b.AddTask("縮小", 2, resource.Of(1))
	b.AddDep(first, second)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{
		Algorithm:  "test",
		Placements: []Placement{{Task: first, Start: 0}, {Task: second, Start: 3}},
		Makespan:   5,
	}
	if err := Validate(g, cluster.Single(resource.Of(1)), s); err != nil {
		t.Fatal(err)
	}
	out := s.Gantt(g, 20)
	if !utf8.ValidString(out) {
		t.Errorf("Gantt output is not valid UTF-8:\n%q", out)
	}
	if !strings.Contains(out, "…") {
		t.Errorf("long name was not truncated with an ellipsis:\n%s", out)
	}
	if strings.Contains(out, "�") {
		t.Errorf("Gantt output contains replacement characters:\n%s", out)
	}
}
