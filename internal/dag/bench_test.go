package dag

import (
	"math/rand"
	"testing"

	"spear/internal/resource"
)

// BenchmarkBuildWithFeatures measures graph construction including the
// b-level/b-load feature sweep on a 100-task layered DAG.
func BenchmarkBuildWithFeatures(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	type edge struct{ from, to int }
	type spec struct {
		runtime int64
		demand  resource.Vector
	}
	specs := make([]spec, 100)
	var edges []edge
	for i := range specs {
		specs[i] = spec{runtime: r.Int63n(20) + 1, demand: resource.Of(r.Int63n(20)+1, r.Int63n(20)+1)}
		if i > 0 {
			for k := 0; k < 1+r.Intn(3); k++ {
				edges = append(edges, edge{from: r.Intn(i), to: i})
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := NewBuilder(2)
		ids := make([]TaskID, len(specs))
		for j, s := range specs {
			ids[j] = builder.AddTask("t", s.runtime, s.demand)
		}
		for _, e := range edges {
			builder.AddDep(ids[e.from], ids[e.to])
		}
		if _, err := builder.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
