package dag

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for debugging and
// documentation. Each node is labelled with its name, runtime and demand.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph job {\n  rankdir=TB;\n  node [shape=box];\n")
	for i := range g.tasks {
		t := &g.tasks[i]
		fmt.Fprintf(&b, "  t%d [label=%q];\n", t.ID, fmt.Sprintf("%s\\nr=%d d=%s", t.Name, t.Runtime, t.Demand))
	}
	for id, succs := range g.succ {
		for _, s := range succs {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", id, s)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
