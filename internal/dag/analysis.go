package dag

// Additional classic DAG-scheduling analyses beyond the b-level family the
// policy network consumes: t-levels (earliest possible start times on an
// infinite cluster), slack (scheduling freedom), and the level
// decomposition used by the level-by-level schedulers the paper's related
// work discusses.

// TLevels returns, per task, the length of the longest runtime path from
// any entry task to the task (exclusive of the task itself) — the earliest
// time the task could start given unlimited resources.
func (g *Graph) TLevels() []int64 {
	tl := make([]int64, len(g.tasks))
	for _, v := range g.topo {
		for _, p := range g.pred[v] {
			if cand := tl[p] + g.tasks[p].Runtime; cand > tl[v] {
				tl[v] = cand
			}
		}
	}
	return tl
}

// Slacks returns, per task, the scheduling freedom on an infinite cluster:
// criticalPath - tlevel(v) - blevel(v). Tasks on a critical path have zero
// slack.
func (g *Graph) Slacks() []int64 {
	cp := g.CriticalPath()
	tl := g.TLevels()
	out := make([]int64, len(g.tasks))
	for v := range g.tasks {
		out[v] = cp - tl[v] - g.blevel[v]
	}
	return out
}

// Levels returns the level decomposition: level(v) = longest edge-count
// distance from an entry task. Level-by-level schedulers process one level
// entirely before the next — ignoring that tasks from different levels can
// overlap, which is why the paper's related work calls them "naturally
// sub-optimal".
func (g *Graph) Levels() []int {
	lv := make([]int, len(g.tasks))
	for _, v := range g.topo {
		for _, p := range g.pred[v] {
			if lv[p]+1 > lv[v] {
				lv[v] = lv[p] + 1
			}
		}
	}
	return lv
}

// NumLevels reports the number of distinct levels (depth of the DAG + 1).
func (g *Graph) NumLevels() int {
	max := 0
	for _, l := range g.Levels() {
		if l > max {
			max = l
		}
	}
	return max + 1
}
