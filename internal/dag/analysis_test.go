package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spear/internal/resource"
)

func TestTLevels(t *testing.T) {
	g := diamond(t)
	// a starts at 0; b and c after a (2); d after c (2+5=7).
	tl := g.TLevels()
	want := []int64{0, 2, 2, 7}
	for i := range want {
		if tl[i] != want[i] {
			t.Errorf("TLevel[%d] = %d, want %d", i, tl[i], want[i])
		}
	}
}

func TestSlacks(t *testing.T) {
	g := diamond(t)
	// Critical path a->c->d = 8. a, c, d on it (slack 0); b: 8-2-4 = 2.
	slacks := g.Slacks()
	want := []int64{0, 2, 0, 0}
	for i := range want {
		if slacks[i] != want[i] {
			t.Errorf("Slack[%d] = %d, want %d", i, slacks[i], want[i])
		}
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	lv := g.Levels()
	want := []int{0, 1, 1, 2}
	for i := range want {
		if lv[i] != want[i] {
			t.Errorf("Level[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
	if g.NumLevels() != 3 {
		t.Errorf("NumLevels = %d, want 3", g.NumLevels())
	}
}

func TestPropertyTLevelPlusBLevelBounded(t *testing.T) {
	// For every task: tlevel(v) + blevel(v) <= critical path, with equality
	// somewhere (the critical path itself).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		b := NewBuilder(1)
		ids := make([]TaskID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddTask("t", r.Int63n(9)+1, resource.Of(1))
		}
		for i := 1; i < n; i++ {
			for k := 0; k < r.Intn(3); k++ {
				b.AddDep(ids[r.Intn(i)], ids[i])
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		cp := g.CriticalPath()
		tl := g.TLevels()
		tight := false
		for v := 0; v < n; v++ {
			total := tl[v] + g.BLevel(TaskID(v))
			if total > cp {
				return false
			}
			if total == cp {
				tight = true
			}
		}
		return tight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySlackNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		b := NewBuilder(1)
		ids := make([]TaskID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddTask("t", r.Int63n(5)+1, resource.Of(1))
		}
		for i := 1; i < n; i++ {
			b.AddDep(ids[r.Intn(i)], ids[i])
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for _, s := range g.Slacks() {
			if s < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
