// Package dag models a job as a directed acyclic graph of tasks with
// per-task runtimes and multi-dimensional resource demands, and computes the
// graph features the scheduler and the DRL policy consume: b-level, b-load,
// child counts and the critical path (paper §III-D).
package dag

import (
	"errors"
	"fmt"

	"spear/internal/resource"
)

// TaskID identifies a task within a single Graph. IDs are dense: a graph with
// n tasks uses IDs 0..n-1, assigned in insertion order by the Builder.
type TaskID int32

// Task is a single unit of work: it runs for Runtime ticks and occupies
// Demand resources for its whole duration.
type Task struct {
	ID      TaskID
	Name    string
	Runtime int64
	Demand  resource.Vector
}

// Graph is an immutable DAG of tasks. Build one with a Builder. All feature
// queries are O(1) after construction.
type Graph struct {
	tasks []Task
	succ  [][]TaskID
	pred  [][]TaskID
	topo  []TaskID // topological order, entry tasks first

	blevel []int64   // longest runtime path from task to an exit, inclusive
	bload  [][]int64 // accumulated load along the b-level path, per dimension
	dims   int

	// Graph-level scalars cached at Build time; the graph is immutable, and
	// these sit on the per-step DRL featurization hot path.
	criticalPath int64
	maxRuntime   int64
	totalWork    []int64 // per dimension
}

// Errors reported by Builder.Build.
var (
	ErrCycle          = errors.New("dag: graph contains a cycle")
	ErrEmpty          = errors.New("dag: graph has no tasks")
	ErrBadRuntime     = errors.New("dag: task runtime must be positive")
	ErrBadDemand      = errors.New("dag: task demand must be non-negative with matching dimensions")
	ErrUnknownTask    = errors.New("dag: unknown task id")
	ErrSelfDependency = errors.New("dag: task cannot depend on itself")
)

// Builder incrementally assembles a Graph.
type Builder struct {
	dims  int
	tasks []Task
	succ  [][]TaskID
	pred  [][]TaskID
	err   error // first structural error, reported by Build
}

// NewBuilder returns a Builder for graphs whose task demands have the given
// number of resource dimensions.
func NewBuilder(dims int) *Builder {
	return &Builder{dims: dims}
}

// AddTask appends a task and returns its ID. The demand vector is copied.
// Invalid runtimes or demands are recorded and reported by Build.
func (b *Builder) AddTask(name string, runtime int64, demand resource.Vector) TaskID {
	id := TaskID(len(b.tasks))
	if runtime <= 0 && b.err == nil {
		b.err = fmt.Errorf("%w: task %q has runtime %d", ErrBadRuntime, name, runtime)
	}
	if (demand.Dims() != b.dims || !demand.NonNegative()) && b.err == nil {
		b.err = fmt.Errorf("%w: task %q demand %v (want %d dims)", ErrBadDemand, name, demand, b.dims)
	}
	b.tasks = append(b.tasks, Task{ID: id, Name: name, Runtime: runtime, Demand: demand.Clone()})
	b.succ = append(b.succ, nil)
	b.pred = append(b.pred, nil)
	return id
}

// AddDep records that child cannot start until parent has finished.
// Duplicate edges are ignored.
func (b *Builder) AddDep(parent, child TaskID) {
	if int(parent) < 0 || int(parent) >= len(b.tasks) || int(child) < 0 || int(child) >= len(b.tasks) {
		if b.err == nil {
			b.err = fmt.Errorf("%w: edge %d -> %d with %d tasks", ErrUnknownTask, parent, child, len(b.tasks))
		}
		return
	}
	if parent == child {
		if b.err == nil {
			b.err = fmt.Errorf("%w: task %d", ErrSelfDependency, parent)
		}
		return
	}
	for _, s := range b.succ[parent] {
		if s == child {
			return
		}
	}
	b.succ[parent] = append(b.succ[parent], child)
	b.pred[child] = append(b.pred[child], parent)
}

// Build validates the accumulated structure and returns the immutable Graph.
// The Builder must not be reused after a successful Build.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.tasks) == 0 {
		return nil, ErrEmpty
	}
	g := &Graph{tasks: b.tasks, succ: b.succ, pred: b.pred, dims: b.dims}
	topo, err := g.topologicalOrder()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	g.computeFeatures()
	return g, nil
}

// topologicalOrder returns tasks in dependency order (Kahn's algorithm) or
// ErrCycle when the graph is cyclic. The order is deterministic: among tasks
// whose dependencies are all satisfied, the lowest ID comes first.
func (g *Graph) topologicalOrder() ([]TaskID, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		indeg[id] = len(g.pred[id])
	}
	// A simple binary-heap-free deterministic frontier: scan for ready IDs in
	// ascending order using a boolean frontier set. n is small (<= a few
	// thousand), and construction happens once per graph.
	order := make([]TaskID, 0, n)
	ready := make([]TaskID, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready = append(ready, TaskID(id))
		}
	}
	for len(ready) > 0 {
		// Pop the smallest ID for determinism.
		minIdx := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[minIdx] {
				minIdx = i
			}
		}
		id := ready[minIdx]
		ready[minIdx] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, id)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// computeFeatures fills blevel and bload by a reverse topological sweep.
//
// blevel(v) = runtime(v) + max over children blevel(c); the b-level of an
// exit task is its own runtime. bload(v) accumulates runtime*demand along
// the same path that realizes the b-level (ties broken by larger total
// b-load, then by smaller child ID), per resource dimension.
func (g *Graph) computeFeatures() {
	n := len(g.tasks)
	g.blevel = make([]int64, n)
	g.bload = make([][]int64, n)
	for i := len(g.topo) - 1; i >= 0; i-- {
		v := g.topo[i]
		t := &g.tasks[v]
		best := TaskID(-1)
		for _, c := range g.succ[v] {
			if best == -1 {
				best = c
				continue
			}
			switch {
			case g.blevel[c] > g.blevel[best]:
				best = c
			case g.blevel[c] == g.blevel[best]:
				cl, bl := sum64(g.bload[c]), sum64(g.bload[best])
				if cl > bl || (cl == bl && c < best) {
					best = c
				}
			}
		}
		load := make([]int64, g.dims)
		for d := 0; d < g.dims; d++ {
			load[d] = t.Runtime * t.Demand[d]
		}
		if best >= 0 {
			g.blevel[v] = t.Runtime + g.blevel[best]
			for d := 0; d < g.dims; d++ {
				load[d] += g.bload[best][d]
			}
		} else {
			g.blevel[v] = t.Runtime
		}
		g.bload[v] = load
	}

	g.totalWork = make([]int64, g.dims)
	for i := range g.tasks {
		t := &g.tasks[i]
		if t.Runtime > g.maxRuntime {
			g.maxRuntime = t.Runtime
		}
		for d := 0; d < g.dims; d++ {
			g.totalWork[d] += t.Runtime * t.Demand[d]
		}
	}
	for id := range g.tasks {
		if g.pred[id] == nil && g.blevel[id] > g.criticalPath {
			g.criticalPath = g.blevel[id]
		}
	}
}

func sum64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// NumTasks reports the number of tasks in the graph.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// Dims reports the number of resource dimensions of task demands.
func (g *Graph) Dims() int { return g.dims }

// Task returns the task with the given ID. The returned value shares the
// demand vector with the graph; callers must not modify it.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Succ returns the direct successors (children) of id. The returned slice is
// owned by the graph; callers must not modify it.
func (g *Graph) Succ(id TaskID) []TaskID { return g.succ[id] }

// Pred returns the direct predecessors (parents) of id. The returned slice
// is owned by the graph; callers must not modify it.
func (g *Graph) Pred(id TaskID) []TaskID { return g.pred[id] }

// NumChildren reports the out-degree of id, one of the DRL tie-break
// features (paper §III-D).
func (g *Graph) NumChildren(id TaskID) int { return len(g.succ[id]) }

// TopologicalOrder returns a copy of the cached dependency order.
func (g *Graph) TopologicalOrder() []TaskID {
	out := make([]TaskID, len(g.topo))
	copy(out, g.topo)
	return out
}

// BLevel returns the longest runtime path from id to any exit task,
// including id's own runtime.
func (g *Graph) BLevel(id TaskID) int64 { return g.blevel[id] }

// BLoad returns the accumulated load (runtime x demand) along id's b-level
// path for the given resource dimension.
func (g *Graph) BLoad(id TaskID, dim int) int64 { return g.bload[id][dim] }

// CriticalPath returns the length of the longest runtime path through the
// graph — a lower bound on any schedule's makespan. Cached at Build time.
func (g *Graph) CriticalPath() int64 { return g.criticalPath }

// Entries returns the tasks with no predecessors, in ID order.
func (g *Graph) Entries() []TaskID {
	var out []TaskID
	for id := range g.tasks {
		if len(g.pred[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// Exits returns the tasks with no successors, in ID order.
func (g *Graph) Exits() []TaskID {
	var out []TaskID
	for id := range g.tasks {
		if len(g.succ[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// TotalWork returns the sum over tasks of runtime x demand for the given
// dimension: the total area the job occupies in the resource-time space.
// Cached at Build time.
func (g *Graph) TotalWork(dim int) int64 { return g.totalWork[dim] }

// MakespanLowerBound returns a simple lower bound on the makespan of any
// valid schedule: the maximum of the critical path and, per dimension, the
// total work divided by capacity (rounded up).
func (g *Graph) MakespanLowerBound(capacity resource.Vector) (int64, error) {
	if capacity.Dims() != g.dims {
		return 0, resource.ErrDimensionMismatch
	}
	lb := g.CriticalPath()
	for d := 0; d < g.dims; d++ {
		if capacity[d] <= 0 {
			return 0, fmt.Errorf("dag: capacity dimension %d is not positive", d)
		}
		w := g.TotalWork(d)
		bound := (w + capacity[d] - 1) / capacity[d]
		if bound > lb {
			lb = bound
		}
	}
	return lb, nil
}

// MaxDemand returns, per dimension, the largest demand of any single task.
// A graph is schedulable on a cluster only if MaxDemand fits within its
// capacity.
func (g *Graph) MaxDemand() resource.Vector {
	out := resource.New(g.dims)
	for i := range g.tasks {
		for d := 0; d < g.dims; d++ {
			if g.tasks[i].Demand[d] > out[d] {
				out[d] = g.tasks[i].Demand[d]
			}
		}
	}
	return out
}

// MaxRuntime returns the largest runtime of any single task. Cached at
// Build time.
func (g *Graph) MaxRuntime() int64 { return g.maxRuntime }
