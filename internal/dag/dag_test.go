package dag

import (
	"errors"
	"strings"
	"testing"

	"spear/internal/resource"
)

// diamond builds the classic 4-task diamond:
//
//	a(2) -> b(3), c(5) -> d(1)
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2)
	a := b.AddTask("a", 2, resource.Of(1, 1))
	bb := b.AddTask("b", 3, resource.Of(2, 1))
	c := b.AddTask("c", 5, resource.Of(1, 2))
	d := b.AddTask("d", 1, resource.Of(1, 1))
	b.AddDep(a, bb)
	b.AddDep(a, c)
	b.AddDep(bb, d)
	b.AddDep(c, d)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildDiamond(t *testing.T) {
	g := diamond(t)
	if g.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d, want 4", g.NumTasks())
	}
	if g.Dims() != 2 {
		t.Fatalf("Dims = %d, want 2", g.Dims())
	}
	if got := g.Task(1).Name; got != "b" {
		t.Errorf("Task(1).Name = %q, want b", got)
	}
	if got := g.NumChildren(0); got != 2 {
		t.Errorf("NumChildren(a) = %d, want 2", got)
	}
	if got := len(g.Pred(3)); got != 2 {
		t.Errorf("len(Pred(d)) = %d, want 2", got)
	}
}

func TestBLevel(t *testing.T) {
	g := diamond(t)
	// d: 1; b: 3+1=4; c: 5+1=6; a: 2+6=8.
	want := map[TaskID]int64{0: 8, 1: 4, 2: 6, 3: 1}
	for id, w := range want {
		if got := g.BLevel(id); got != w {
			t.Errorf("BLevel(%d) = %d, want %d", id, got, w)
		}
	}
	if got := g.CriticalPath(); got != 8 {
		t.Errorf("CriticalPath = %d, want 8", got)
	}
}

func TestBLoadFollowsBLevelPath(t *testing.T) {
	g := diamond(t)
	// a's b-level path is a->c->d.
	// dim0: 2*1 + 5*1 + 1*1 = 8; dim1: 2*1 + 5*2 + 1*1 = 13.
	if got := g.BLoad(0, 0); got != 8 {
		t.Errorf("BLoad(a, 0) = %d, want 8", got)
	}
	if got := g.BLoad(0, 1); got != 13 {
		t.Errorf("BLoad(a, 1) = %d, want 13", got)
	}
	// Exit task: just its own load.
	if got := g.BLoad(3, 1); got != 1 {
		t.Errorf("BLoad(d, 1) = %d, want 1", got)
	}
}

func TestBLoadTieBreak(t *testing.T) {
	// Two children with equal b-level but different loads: the heavier load
	// path must be chosen.
	b := NewBuilder(1)
	root := b.AddTask("root", 1, resource.Of(1))
	light := b.AddTask("light", 5, resource.Of(1))
	heavy := b.AddTask("heavy", 5, resource.Of(4))
	b.AddDep(root, light)
	b.AddDep(root, heavy)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.BLevel(root) != 6 {
		t.Fatalf("BLevel(root) = %d, want 6", g.BLevel(root))
	}
	// root load 1*1 + heavy path 5*4 = 21.
	if got := g.BLoad(root, 0); got != 21 {
		t.Errorf("BLoad(root) = %d, want 21 (heavy path)", got)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := diamond(t)
	order := g.TopologicalOrder()
	pos := make(map[TaskID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for id := 0; id < g.NumTasks(); id++ {
		for _, s := range g.Succ(TaskID(id)) {
			if pos[TaskID(id)] >= pos[s] {
				t.Errorf("topo order violates edge %d -> %d", id, s)
			}
		}
	}
	// Determinism: a then b (1) before c (2)? b and c both ready after a;
	// smallest ID first.
	want := []TaskID{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEntriesExits(t *testing.T) {
	g := diamond(t)
	if e := g.Entries(); len(e) != 1 || e[0] != 0 {
		t.Errorf("Entries = %v, want [0]", e)
	}
	if x := g.Exits(); len(x) != 1 || x[0] != 3 {
		t.Errorf("Exits = %v, want [3]", x)
	}
}

func TestCycleRejected(t *testing.T) {
	b := NewBuilder(1)
	x := b.AddTask("x", 1, resource.Of(1))
	y := b.AddTask("y", 1, resource.Of(1))
	z := b.AddTask("z", 1, resource.Of(1))
	b.AddDep(x, y)
	b.AddDep(y, z)
	b.AddDep(z, x)
	if _, err := b.Build(); !errors.Is(err, ErrCycle) {
		t.Errorf("Build cyclic graph: err = %v, want ErrCycle", err)
	}
}

func TestEmptyRejected(t *testing.T) {
	if _, err := NewBuilder(1).Build(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Build empty graph: err = %v, want ErrEmpty", err)
	}
}

func TestBadRuntimeRejected(t *testing.T) {
	for _, runtime := range []int64{0, -5} {
		b := NewBuilder(1)
		b.AddTask("bad", runtime, resource.Of(1))
		if _, err := b.Build(); !errors.Is(err, ErrBadRuntime) {
			t.Errorf("runtime %d: err = %v, want ErrBadRuntime", runtime, err)
		}
	}
}

func TestBadDemandRejected(t *testing.T) {
	b := NewBuilder(2)
	b.AddTask("wrong dims", 1, resource.Of(1))
	if _, err := b.Build(); !errors.Is(err, ErrBadDemand) {
		t.Errorf("wrong dims: err = %v, want ErrBadDemand", err)
	}

	b = NewBuilder(1)
	b.AddTask("negative", 1, resource.Of(-1))
	if _, err := b.Build(); !errors.Is(err, ErrBadDemand) {
		t.Errorf("negative demand: err = %v, want ErrBadDemand", err)
	}
}

func TestBadEdgesRejected(t *testing.T) {
	b := NewBuilder(1)
	x := b.AddTask("x", 1, resource.Of(1))
	b.AddDep(x, x)
	if _, err := b.Build(); !errors.Is(err, ErrSelfDependency) {
		t.Errorf("self dep: err = %v, want ErrSelfDependency", err)
	}

	b = NewBuilder(1)
	x = b.AddTask("x", 1, resource.Of(1))
	b.AddDep(x, TaskID(42))
	if _, err := b.Build(); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown task: err = %v, want ErrUnknownTask", err)
	}
}

func TestAddDepOutOfRangeAfterEarlierError(t *testing.T) {
	// Regression (found by FuzzBuilder): an out-of-range edge after an
	// already-recorded task error must not panic.
	b := NewBuilder(1)
	b.AddTask("bad-runtime", 0, resource.Of(1)) // records ErrBadRuntime
	b.AddDep(TaskID(1), TaskID(0))              // out of range; used to panic
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted invalid input")
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	b := NewBuilder(1)
	x := b.AddTask("x", 1, resource.Of(1))
	y := b.AddTask("y", 1, resource.Of(1))
	b.AddDep(x, y)
	b.AddDep(x, y)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(g.Succ(x)) != 1 || len(g.Pred(y)) != 1 {
		t.Errorf("duplicate edge not deduplicated: succ=%v pred=%v", g.Succ(x), g.Pred(y))
	}
}

func TestDemandIsCopied(t *testing.T) {
	demand := resource.Of(3)
	b := NewBuilder(1)
	id := b.AddTask("x", 1, demand)
	demand[0] = 99
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Task(id).Demand[0] != 3 {
		t.Errorf("builder aliases caller demand: %v", g.Task(id).Demand)
	}
}

func TestTotalWorkAndLowerBound(t *testing.T) {
	g := diamond(t)
	// dim0 work: 2*1 + 3*2 + 5*1 + 1*1 = 14; dim1: 2+3+10+1 = 16.
	if got := g.TotalWork(0); got != 14 {
		t.Errorf("TotalWork(0) = %d, want 14", got)
	}
	if got := g.TotalWork(1); got != 16 {
		t.Errorf("TotalWork(1) = %d, want 16", got)
	}

	// Large capacity: bound = critical path.
	lb, err := g.MakespanLowerBound(resource.Of(100, 100))
	if err != nil {
		t.Fatalf("MakespanLowerBound: %v", err)
	}
	if lb != 8 {
		t.Errorf("lower bound = %d, want 8 (critical path)", lb)
	}

	// Tight capacity: work bound dominates. dim1 work 16 over capacity 2 -> 8;
	// capacity 1 in dim1 would be infeasible for task c (demand 2), but the
	// bound itself is still computable: 16/1 = 16 > 8.
	lb, err = g.MakespanLowerBound(resource.Of(2, 1))
	if err != nil {
		t.Fatalf("MakespanLowerBound: %v", err)
	}
	if lb != 16 {
		t.Errorf("lower bound = %d, want 16", lb)
	}

	if _, err := g.MakespanLowerBound(resource.Of(1)); err == nil {
		t.Error("MakespanLowerBound with wrong dims: want error")
	}
	if _, err := g.MakespanLowerBound(resource.Of(0, 1)); err == nil {
		t.Error("MakespanLowerBound with zero capacity: want error")
	}
}

func TestMaxDemandMaxRuntime(t *testing.T) {
	g := diamond(t)
	if got := g.MaxDemand(); !got.Equal(resource.Of(2, 2)) {
		t.Errorf("MaxDemand = %v, want (2, 2)", got)
	}
	if got := g.MaxRuntime(); got != 5 {
		t.Errorf("MaxRuntime = %d, want 5", got)
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "t0 -> t1", "t2 -> t3"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestChainBLevelMonotone(t *testing.T) {
	// Along any edge, parent b-level > child b-level (runtimes positive).
	b := NewBuilder(1)
	prev := b.AddTask("t0", 3, resource.Of(1))
	for i := 1; i < 20; i++ {
		cur := b.AddTask("t", int64(1+i%4), resource.Of(1))
		b.AddDep(prev, cur)
		prev = cur
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for id := 0; id < g.NumTasks(); id++ {
		for _, s := range g.Succ(TaskID(id)) {
			if g.BLevel(TaskID(id)) <= g.BLevel(s) {
				t.Fatalf("BLevel not monotone along %d -> %d", id, s)
			}
		}
	}
}
