package dag

import (
	"testing"

	"spear/internal/resource"
)

// FuzzBuilder feeds arbitrary byte-driven task/edge streams into the
// Builder: Build must either return an error or a graph whose invariants
// hold (acyclic topological order, monotone b-level along edges,
// non-negative b-load).
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 0, 1, 1, 2})
	f.Add([]byte{2, 5, 5, 0, 1, 1, 0}) // attempted 2-cycle
	f.Add([]byte{1, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]%16) + 1
		b := NewBuilder(1)
		pos := 1
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			v := data[pos]
			pos++
			return v
		}
		for i := 0; i < n; i++ {
			runtime := int64(next()%9) - 1 // occasionally invalid (<= 0)
			b.AddTask("t", runtime, resource.Of(int64(next()%5)))
		}
		for pos+1 < len(data) {
			b.AddDep(TaskID(next()%byte(n+2)), TaskID(next()%byte(n+2)))
		}

		g, err := b.Build()
		if err != nil {
			return // rejected inputs are fine; they must not panic
		}
		order := g.TopologicalOrder()
		if len(order) != g.NumTasks() {
			t.Fatalf("topo order covers %d of %d tasks", len(order), g.NumTasks())
		}
		posOf := make(map[TaskID]int, len(order))
		for i, id := range order {
			posOf[id] = i
		}
		for id := 0; id < g.NumTasks(); id++ {
			for _, s := range g.Succ(TaskID(id)) {
				if posOf[TaskID(id)] >= posOf[s] {
					t.Fatalf("edge %d->%d violates topo order", id, s)
				}
				if g.BLevel(TaskID(id)) <= g.BLevel(s) {
					t.Fatalf("b-level not monotone along %d->%d", id, s)
				}
			}
			if g.BLoad(TaskID(id), 0) < 0 {
				t.Fatalf("negative b-load at %d", id)
			}
		}
		if g.CriticalPath() < g.MaxRuntime() {
			t.Fatalf("critical path %d < max runtime %d", g.CriticalPath(), g.MaxRuntime())
		}
	})
}
