package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"spear/internal/obs"
	"spear/internal/sched"
)

// LogEvent is one entry of the run log. Kind is "arrive", "reject", "plan"
// or "complete"; the optional fields are populated per kind. No field ever
// carries wall-clock time — the log is a pure function of the Config, so
// re-running the config must reproduce it byte for byte.
type LogEvent struct {
	Time   int64  `json:"t"`
	Kind   string `json:"kind"`
	Job    string `json:"job"`
	Class  string `json:"class"`
	Tenant string `json:"tenant"`
	// Start and Makespan describe the committed plan (plan, complete).
	Start    int64 `json:"start,omitempty"`
	Makespan int64 `json:"makespan,omitempty"`
	// QueueDelay is plan start minus arrival, in slots (plan).
	QueueDelay int64 `json:"queueDelay,omitempty"`
	// JCT is completion minus arrival, in slots (complete).
	JCT int64 `json:"jct,omitempty"`
	// Stretch is JCT divided by the planned makespan (complete).
	Stretch float64 `json:"stretch,omitempty"`
	// Schedule is the committed plan, present only when
	// Config.DumpSchedules is set (plan).
	Schedule *sched.Schedule `json:"schedule,omitempty"`
}

// ClassSummary aggregates one class's run outcome.
type ClassSummary struct {
	Class          string  `json:"class"`
	Tenant         string  `json:"tenant"`
	Arrivals       int64   `json:"arrivals"`
	Rejected       int64   `json:"rejected"`
	Completed      int64   `json:"completed"`
	MeanJCT        float64 `json:"meanJctSlots"`
	MeanQueueDelay float64 `json:"meanQueueDelaySlots"`
	MeanStretch    float64 `json:"meanStretch"`
	Jain           float64 `json:"jainFairness"`
}

// Summary is the run-level aggregate of a serving run.
type Summary struct {
	FinalClock   int64          `json:"finalClockSlots"`
	Arrivals     int64          `json:"arrivals"`
	Admitted     int64          `json:"admitted"`
	Rejected     int64          `json:"rejected"`
	Planned      int64          `json:"planned"`
	Completed    int64          `json:"completed"`
	JainFairness float64        `json:"jainFairness"`
	Classes      []ClassSummary `json:"classes"`
}

// RunLog is the full record of one serving run: the configuration that
// produced it, every event in processing order, and the summary. It is the
// replay format — Replay(log.Config, ...) re-executes the run and must
// return an identical log.
type RunLog struct {
	Config  Config     `json:"config"`
	Events  []LogEvent `json:"events"`
	Summary Summary    `json:"summary"`
}

// Marshal renders the log in its canonical byte form: indented JSON with a
// trailing newline. Byte-identity of replays is defined over this form.
// Dumped schedules have their Elapsed normalized to zero first: planning
// wall-clock time is the one nondeterministic field a schedule carries, and
// letting it through would make replay byte-comparison flake.
func (l *RunLog) Marshal() ([]byte, error) {
	for i := range l.Events {
		if s := l.Events[i].Schedule; s != nil && s.Elapsed != 0 {
			c := *s
			c.Elapsed = 0
			l.Events[i].Schedule = &c
		}
	}
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// LoadRunLog reads a log previously written via Marshal.
func LoadRunLog(r io.Reader) (*RunLog, error) {
	var l RunLog
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("serve: decode run log: %w", err)
	}
	return &l, nil
}

// Replay re-executes a run from its config with the given scheduler. The
// caller is responsible for supplying a scheduler equivalent to the one
// named by cfg.Algorithm; with a deterministic scheduler the returned log
// is byte-identical to the original.
func Replay(cfg Config, scheduler sched.Scheduler, reg *obs.Registry) (*RunLog, error) {
	s, err := New(cfg, scheduler, reg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
