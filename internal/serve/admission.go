package serve

import "fmt"

// Admission policy names accepted in AdmissionConfig.Policy.
const (
	// PolicyAlways admits every arriving job (the open-loop baseline).
	PolicyAlways = "always"
	// PolicyTokenBucket admits at a sustained rate with bounded bursts.
	PolicyTokenBucket = "token-bucket"
)

// AdmissionConfig selects and parameterizes the admission policy.
type AdmissionConfig struct {
	// Policy is one of PolicyAlways (also the empty default) or
	// PolicyTokenBucket.
	Policy string `json:"policy"`
	// BucketCap is the token-bucket burst capacity in jobs.
	BucketCap float64 `json:"bucketCap,omitempty"`
	// RefillPerSlot is the sustained admission rate in jobs per slot.
	RefillPerSlot float64 `json:"refillPerSlot,omitempty"`
}

// Admission decides, on the simulated clock, whether an arriving job enters
// the backlog. Implementations see arrivals in nondecreasing time order and
// must be deterministic: the decision may depend only on the clock and the
// sequence of prior calls, never on wall time or unseeded randomness.
type Admission interface {
	// Admit is called once per arrival; returning false rejects the job
	// permanently (the serving loop has no retry queue).
	Admit(now int64) bool
}

// NewAdmission builds the policy described by cfg.
func NewAdmission(cfg AdmissionConfig) (Admission, error) {
	switch cfg.Policy {
	case "", PolicyAlways:
		return AlwaysAdmit{}, nil
	case PolicyTokenBucket:
		return NewTokenBucket(cfg.BucketCap, cfg.RefillPerSlot)
	default:
		return nil, fmt.Errorf("serve: unknown admission policy %q (want %q or %q)",
			cfg.Policy, PolicyAlways, PolicyTokenBucket)
	}
}

// AlwaysAdmit accepts every job.
type AlwaysAdmit struct{}

// Admit always reports true.
func (AlwaysAdmit) Admit(int64) bool { return true }

// TokenBucket admits up to capacity jobs in a burst and refills at a fixed
// rate per simulated slot. The bucket starts full.
type TokenBucket struct {
	capacity float64
	rate     float64
	tokens   float64
	last     int64
}

// NewTokenBucket returns a full bucket with the given burst capacity (jobs)
// and refill rate (jobs per slot).
func NewTokenBucket(capacity, refillPerSlot float64) (*TokenBucket, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("serve: token bucket capacity %v must be >= 1", capacity)
	}
	if refillPerSlot < 0 {
		return nil, fmt.Errorf("serve: token bucket refill rate %v must be >= 0", refillPerSlot)
	}
	return &TokenBucket{capacity: capacity, rate: refillPerSlot, tokens: capacity}, nil
}

// Admit spends one token if available after refilling for the elapsed slots.
func (b *TokenBucket) Admit(now int64) bool {
	if now > b.last {
		b.tokens += float64(now-b.last) * b.rate
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Tokens reports the current token balance (after the last Admit's refill).
func (b *TokenBucket) Tokens() float64 { return b.tokens }
