package serve_test

import (
	"bytes"
	"strings"
	"testing"

	"spear/internal/baselines"
	"spear/internal/serve"
)

// TestMultiMachineReplayByteIdentical extends the replay acceptance check to
// a 4-machine cluster: the run log must still be a pure function of the
// config.
func TestMultiMachineReplayByteIdentical(t *testing.T) {
	cfg := testConfig(11)
	cfg.Machines = 4
	first, err := mustRun(t, cfg).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), `"machines": 4`) {
		t.Error("run log config does not record the machine count")
	}
	loaded, err := serve.LoadRunLog(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config.Machines != 4 {
		t.Fatalf("loaded config has %d machines, want 4", loaded.Config.Machines)
	}
	replayed, err := serve.Replay(loaded.Config, baselines.NewCPScheduler(), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayBytes, err := replayed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, replayBytes) {
		t.Fatal("4-machine replay differs from the original run")
	}
}

// TestExplicitSingleMachineMatchesLegacy pins the N=1 equivalence: a config
// that says Machines=1 must behave identically to one that omits the field
// (the legacy single-box path) — same events, same summary. Only the echoed
// config differs, by the explicit "machines": 1.
func TestExplicitSingleMachineMatchesLegacy(t *testing.T) {
	legacy := mustRun(t, testConfig(11))
	explicit := testConfig(11)
	explicit.Machines = 1
	one := mustRun(t, explicit)

	if len(legacy.Events) != len(one.Events) {
		t.Fatalf("event counts differ: legacy %d, machines=1 %d", len(legacy.Events), len(one.Events))
	}
	for i := range legacy.Events {
		if legacy.Events[i] != one.Events[i] {
			t.Fatalf("event %d differs:\nlegacy:     %+v\nmachines=1: %+v", i, legacy.Events[i], one.Events[i])
		}
	}
	if legacy.Summary.FinalClock != one.Summary.FinalClock ||
		legacy.Summary.Completed != one.Summary.Completed ||
		legacy.Summary.JainFairness != one.Summary.JainFairness {
		t.Errorf("summaries differ:\nlegacy:     %+v\nmachines=1: %+v", legacy.Summary, one.Summary)
	}
}

// TestDumpSchedulesNormalizesElapsed covers the wall-clock leak: with
// DumpSchedules on, plan events embed full schedules whose Elapsed field is
// real (nondeterministic) wall time — Marshal must zero it, or -replay's
// byte comparison would flake.
func TestDumpSchedulesNormalizesElapsed(t *testing.T) {
	cfg := testConfig(11)
	cfg.Machines = 2
	cfg.DumpSchedules = true
	log := mustRun(t, cfg)

	var plans int
	for _, ev := range log.Events {
		if ev.Kind != "plan" {
			continue
		}
		plans++
		if ev.Schedule == nil {
			t.Fatalf("plan event for %s has no schedule despite DumpSchedules", ev.Job)
		}
	}
	if plans == 0 {
		t.Fatal("run planned no jobs; test config is too small")
	}

	data, err := log.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schedule"`) {
		t.Error("marshaled log carries no schedule dumps")
	}
	reloaded, err := serve.LoadRunLog(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range reloaded.Events {
		if ev.Schedule != nil && ev.Schedule.Elapsed != 0 {
			t.Fatalf("schedule dump for %s leaks wall clock: elapsed %v", ev.Job, ev.Schedule.Elapsed)
		}
	}

	// The leak check that matters end to end: two runs of the same config
	// spend different wall time planning, yet marshal identically.
	again, err := mustRun(t, cfg).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("schedule-dumping runs are not byte-reproducible")
	}
}

// TestMachinesValidation rejects negative machine counts.
func TestMachinesValidation(t *testing.T) {
	cfg := testConfig(1)
	cfg.Machines = -1
	if _, err := serve.New(cfg, baselines.NewCPScheduler(), nil); err == nil {
		t.Error("negative machine count accepted")
	}
}
