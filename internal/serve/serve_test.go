package serve_test

import (
	"bytes"
	"testing"

	"spear/internal/baselines"
	"spear/internal/obs"
	"spear/internal/serve"
	"spear/internal/workload"
)

// smallTemplate keeps test jobs tiny: 3-ish map and reduce tasks on a
// 2-dimensional, 50-unit cluster.
func smallTemplate() workload.TraceConfig {
	return workload.TraceConfig{
		Jobs: 6, MinTasks: 2, MaxMaps: 4, MaxReduces: 4,
		MedianMaps: 3, MedianReds: 3,
		MedianMapRT: 8, MedianRedRT: 5, MaxMeanRT: 20,
		Dims: 2, Capacity: 50,
	}
}

func testConfig(seed int64) serve.Config {
	return serve.Config{
		Seed:    seed,
		Horizon: 300,
		Classes: []serve.ClassConfig{
			{Name: "gold", Tenant: "acme", Arrival: workload.ArrivalConfig{Kind: workload.ArrivalPoisson, Mean: 40}},
			{Name: "batch", Tenant: "beta", Arrival: workload.ArrivalConfig{Kind: workload.ArrivalGamma, Mean: 60, Shape: 0.5}},
		},
		Template: smallTemplate(),
	}
}

func mustRun(t *testing.T, cfg serve.Config) *serve.RunLog {
	t.Helper()
	s, err := serve.New(cfg, baselines.NewCPScheduler(), nil)
	if err != nil {
		t.Fatal(err)
	}
	log, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestDeterministicReplay is the acceptance criterion of the serving loop:
// the same seed must reproduce the run log byte for byte, and the CLI's
// replay path (load the log, re-run its embedded config) must agree.
func TestDeterministicReplay(t *testing.T) {
	first, err := mustRun(t, testConfig(11)).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	second, err := mustRun(t, testConfig(11)).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("two runs of the same seed produced different logs")
	}

	loaded, err := serve.LoadRunLog(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := serve.Replay(loaded.Config, baselines.NewCPScheduler(), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayBytes, err := replayed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, replayBytes) {
		t.Fatal("replay from the loaded log differs from the original run")
	}

	other, err := mustRun(t, testConfig(12)).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical logs")
	}
}

// TestRunLogInvariants walks the event log checking the lifecycle of every
// job: arrive -> plan -> complete in order, sane per-job metrics, and a
// summary consistent with the events.
func TestRunLogInvariants(t *testing.T) {
	log := mustRun(t, testConfig(5))
	if log.Summary.Arrivals == 0 {
		t.Fatal("no arrivals in 300 slots")
	}
	if log.Summary.Admitted != log.Summary.Arrivals {
		t.Errorf("always-admit run rejected jobs: %+v", log.Summary)
	}
	if log.Summary.Completed != log.Summary.Planned || log.Summary.Completed != log.Summary.Admitted {
		t.Errorf("run did not drain: %+v", log.Summary)
	}

	type jobSeen struct {
		arrive, plan, complete bool
		arriveAt, start        int64
	}
	jobs := make(map[string]*jobSeen)
	lastTime := int64(-1)
	for _, ev := range log.Events {
		if ev.Time < lastTime {
			t.Fatalf("event log goes backwards at %+v", ev)
		}
		lastTime = ev.Time
		j := jobs[ev.Job]
		if j == nil {
			j = &jobSeen{}
			jobs[ev.Job] = j
		}
		switch ev.Kind {
		case "arrive":
			if ev.Time > testConfig(5).Horizon {
				t.Errorf("job %s arrived at %d, past the horizon", ev.Job, ev.Time)
			}
			j.arrive, j.arriveAt = true, ev.Time
		case "plan":
			if !j.arrive || j.complete {
				t.Errorf("plan out of order for %s", ev.Job)
			}
			if ev.QueueDelay != ev.Start-j.arriveAt {
				t.Errorf("job %s queue delay %d, want %d", ev.Job, ev.QueueDelay, ev.Start-j.arriveAt)
			}
			j.plan, j.start = true, ev.Start
		case "complete":
			if !j.plan {
				t.Errorf("complete before plan for %s", ev.Job)
			}
			if want := j.start + ev.Makespan; ev.Time != want {
				t.Errorf("job %s completed at %d, want start+makespan = %d", ev.Job, ev.Time, want)
			}
			if ev.JCT != ev.Time-j.arriveAt {
				t.Errorf("job %s JCT %d, want %d", ev.Job, ev.JCT, ev.Time-j.arriveAt)
			}
			if ev.Stretch < 1 {
				t.Errorf("job %s stretch %v < 1", ev.Job, ev.Stretch)
			}
			j.complete = true
		default:
			t.Errorf("unknown event kind %q", ev.Kind)
		}
	}
	for name, j := range jobs {
		if !j.complete {
			t.Errorf("job %s never completed", name)
		}
	}
	if f := log.Summary.JainFairness; f <= 0 || f > 1 {
		t.Errorf("global Jain fairness %v outside (0, 1]", f)
	}
	if len(log.Summary.Classes) != 2 {
		t.Fatalf("summary has %d classes, want 2", len(log.Summary.Classes))
	}
	for _, cs := range log.Summary.Classes {
		if cs.Completed > 0 && cs.MeanStretch < 1 {
			t.Errorf("class %s mean stretch %v < 1", cs.Class, cs.MeanStretch)
		}
	}
}

// TestTokenBucketAdmissionBoundary drives the serving loop with a bucket
// that can never refill: exactly BucketCap jobs are admitted and the rest
// are rejected, including the arrival that finds the bucket at zero.
func TestTokenBucketAdmissionBoundary(t *testing.T) {
	cfg := testConfig(3)
	cfg.Admission = serve.AdmissionConfig{Policy: serve.PolicyTokenBucket, BucketCap: 2, RefillPerSlot: 0}
	log := mustRun(t, cfg)
	if log.Summary.Arrivals <= 2 {
		t.Fatalf("test needs more than 2 arrivals, got %d", log.Summary.Arrivals)
	}
	if log.Summary.Admitted != 2 {
		t.Errorf("admitted %d jobs, want exactly the bucket capacity 2", log.Summary.Admitted)
	}
	if want := log.Summary.Arrivals - 2; log.Summary.Rejected != want {
		t.Errorf("rejected %d, want %d", log.Summary.Rejected, want)
	}
	if log.Summary.Completed != 2 {
		t.Errorf("completed %d, want 2", log.Summary.Completed)
	}
}

// TestTokenBucketRefill unit-tests the bucket clock math, including the
// exact-one-token boundary after a fractional refill.
func TestTokenBucketRefill(t *testing.T) {
	b, err := serve.NewTokenBucket(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []bool{true, true, false} { // burst drains the full bucket
		if got := b.Admit(0); got != want {
			t.Fatalf("Admit(0) #%d = %v, want %v", i, got, want)
		}
	}
	if !b.Admit(2) { // two slots refill exactly one token
		t.Error("Admit(2) after a 2-slot refill at rate 0.5 should pass")
	}
	if b.Admit(3) { // half a token is not enough
		t.Error("Admit(3) with 0.5 tokens should fail")
	}
	if !b.Admit(4) { // exactly 1.0 tokens: the boundary admits
		t.Error("Admit(4) with exactly 1.0 tokens should pass")
	}
	if b.Tokens() != 0 {
		t.Errorf("tokens after boundary admit = %v, want 0", b.Tokens())
	}
	// The bucket never overfills past its capacity.
	if b.Admit(1000); b.Tokens() != 1 {
		t.Errorf("tokens after long idle = %v, want capacity-1 = 1", b.Tokens())
	}

	if _, err := serve.NewTokenBucket(0.5, 1); err == nil {
		t.Error("capacity below 1 accepted")
	}
	if _, err := serve.NewTokenBucket(2, -1); err == nil {
		t.Error("negative refill rate accepted")
	}
}

// TestNewAdmissionSelectsPolicy pins the policy-name dispatch the CLI
// flags go through.
func TestNewAdmissionSelectsPolicy(t *testing.T) {
	always, err := serve.NewAdmission(serve.AdmissionConfig{})
	if err != nil || !always.Admit(0) {
		t.Fatalf("empty policy should be always-admit: %v", err)
	}
	tb, err := serve.NewAdmission(serve.AdmissionConfig{Policy: serve.PolicyTokenBucket, BucketCap: 1, RefillPerSlot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Admit(0) || tb.Admit(0) {
		t.Error("capacity-1 bucket should admit exactly one job")
	}
	if _, err := serve.NewAdmission(serve.AdmissionConfig{Policy: "coin-flip"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestMaxInFlightQueueing caps the loop at one in-flight job and checks
// that planning respects the cap and later jobs actually queue.
func TestMaxInFlightQueueing(t *testing.T) {
	cfg := testConfig(7)
	cfg.MaxInFlight = 1
	// A bursty class guarantees backlog pressure.
	cfg.Classes[1].Arrival = workload.ArrivalConfig{Kind: workload.ArrivalGamma, Mean: 25, Shape: 0.3}
	log := mustRun(t, cfg)

	inflight, queued := 0, false
	for _, ev := range log.Events {
		switch ev.Kind {
		case "plan":
			inflight++
			if inflight > 1 {
				t.Fatalf("in-flight cap violated at %+v", ev)
			}
			if ev.QueueDelay > 0 {
				queued = true
			}
		case "complete":
			inflight--
		}
	}
	if !queued {
		t.Error("no job experienced queueing delay under MaxInFlight=1")
	}
	if log.Summary.Completed != log.Summary.Admitted {
		t.Errorf("backlog did not drain: %+v", log.Summary)
	}
}

// TestServeMetricsExposition checks the per-SLO-class series reach the
// Prometheus exposition.
func TestServeMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := serve.New(testConfig(9), baselines.NewCPScheduler(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics()
	for _, name := range []string{
		"spear_serve_arrivals_total",
		"spear_serve_completed_total",
		"spear_serve_jain_fairness",
		"spear_serve_class_gold_arrivals_total",
		"spear_serve_class_gold_jct_slots_sum",
		"spear_serve_class_batch_stretch_sum",
	} {
		if _, ok := snap.Value(name); !ok {
			t.Errorf("exposition missing %s", name)
		}
	}
	if v, ok := snap.Value("spear_serve_completed_total"); !ok || v == 0 {
		t.Errorf("no completions recorded: %v", v)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run on a consumed server succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(1)
	cases := []struct {
		name   string
		mutate func(*serve.Config)
	}{
		{"zero horizon", func(c *serve.Config) { c.Horizon = 0 }},
		{"no classes", func(c *serve.Config) { c.Classes = nil }},
		{"duplicate class", func(c *serve.Config) { c.Classes[1].Name = c.Classes[0].Name }},
		{"unnamed class", func(c *serve.Config) { c.Classes[0].Name = "" }},
		{"negative max jobs", func(c *serve.Config) { c.Classes[0].MaxJobs = -1 }},
		{"negative max inflight", func(c *serve.Config) { c.MaxInFlight = -1 }},
		{"bad arrival", func(c *serve.Config) { c.Classes[0].Arrival.Mean = 0 }},
		{"bad admission", func(c *serve.Config) { c.Admission.Policy = "coin-flip" }},
	}
	for _, tc := range cases {
		cfg := testConfig(1)
		cfg.Classes = append([]serve.ClassConfig(nil), base.Classes...)
		tc.mutate(&cfg)
		if _, err := serve.New(cfg, baselines.NewCPScheduler(), nil); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	if _, err := serve.New(testConfig(1), nil, nil); err == nil {
		t.Error("nil scheduler accepted")
	}
}

// TestMaxJobsCapsClass pins the per-class job cap and the default
// always-admit policy.
func TestMaxJobsCapsClass(t *testing.T) {
	var _ serve.Admission = serve.AlwaysAdmit{} // the default policy satisfies the interface

	cfg := testConfig(2)
	cfg.Classes[0].MaxJobs = 3
	cfg.Classes[0].Arrival.Mean = 5 // would otherwise produce far more than 3
	log := mustRun(t, cfg)
	for _, cs := range log.Summary.Classes {
		if cs.Class == "gold" && cs.Arrivals != 3 {
			t.Errorf("gold submitted %d jobs, want the MaxJobs cap 3", cs.Arrivals)
		}
	}
}
