// Package serve runs the online multi-job serving loop: a long-lived
// scheduler daemon in which jobs arrive over a simulated clock, pass
// admission control, and are planned one decision at a time onto a shared
// cluster timeline by any sched.Scheduler. This is the serving-mode
// counterpart of the paper's one-shot batch experiments (§V): the same
// algorithms, but driven by arrival and completion events instead of a
// fixed job list.
//
// The loop is fully deterministic: arrivals are drawn from seeded
// per-class streams, the clock is event-driven (no wall time is read), and
// planning consults only the scheduler and the occupancy grid. Running the
// same Config twice therefore produces byte-identical run logs, which is
// what the replay check in cmd/spear-serve verifies.
package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"spear/internal/cluster"
	"spear/internal/dag"
	"spear/internal/obs"
	"spear/internal/resource"
	"spear/internal/sched"
	"spear/internal/stats"
	"spear/internal/workload"
)

// ClassConfig describes one client class: a tenant submitting jobs of one
// SLO class through its own arrival process.
type ClassConfig struct {
	// Name is the SLO class name ("gold", "batch", ...). Must be unique
	// across the config's classes.
	Name string `json:"name"`
	// Tenant is the owning tenant; several classes may share one tenant.
	// Defaults to Name.
	Tenant string `json:"tenant,omitempty"`
	// Arrival is the class's inter-arrival process.
	Arrival workload.ArrivalConfig `json:"arrival"`
	// MaxJobs caps the number of jobs the class submits; 0 means the class
	// keeps submitting until the horizon.
	MaxJobs int `json:"maxJobs,omitempty"`
}

// Config parameterizes one serving run. The whole struct is embedded in
// the run log, so a log file is sufficient to re-execute its run.
type Config struct {
	// Seed drives every random stream of the run: the job-template
	// generator and one derived stream per class.
	Seed int64 `json:"seed"`
	// Horizon is the last slot at which a job may arrive; the loop then
	// drains until every admitted job has completed.
	Horizon int64 `json:"horizonSlots"`
	// MaxInFlight bounds the number of planned-but-unfinished jobs; further
	// admitted jobs queue in the backlog. 0 means unbounded.
	MaxInFlight int `json:"maxInFlight,omitempty"`
	// Algorithm names the scheduler driving the run. The serving loop
	// treats it as a label; cmd/spear-serve uses it to rebuild the same
	// scheduler when replaying a log.
	Algorithm string `json:"algorithm"`
	// Machines is the number of identical machines in the serving cluster;
	// 0 means 1 (a single box), keeping old configs byte-identical. Each
	// machine gets the template's full capacity vector.
	Machines int `json:"machines,omitempty"`
	// DumpSchedules embeds each committed plan's full schedule in its "plan"
	// log event. Off by default: schedules dominate log size.
	DumpSchedules bool `json:"dumpSchedules,omitempty"`
	// DecisionBudget bounds each planning call's wall-clock time; 0 means
	// unbounded. A budget is a safety valve for anytime schedulers: if it
	// ever fires, the committed plan is the search's incumbent, which can
	// differ across machines — replay byte-identity is only guaranteed
	// when planning finishes within the budget.
	DecisionBudget time.Duration `json:"decisionBudgetNanos,omitempty"`
	// SearchBudget is the per-decision iteration budget of search-based
	// algorithms (the "mcts" algorithm of cmd/spear-serve); 0 for the
	// non-search baselines. Recorded in the log so replay rebuilds the
	// identical search.
	SearchBudget int `json:"searchBudget,omitempty"`
	// TreeParallel is the shared-tree worker count of search-based
	// algorithms; 0 or 1 is the serial, replay-deterministic search.
	// Values above 1 speed planning up but interleave search iterations
	// nondeterministically, so replay byte-identity is no longer
	// guaranteed.
	TreeParallel int `json:"treeParallel,omitempty"`
	// Admission selects the admission-control policy.
	Admission AdmissionConfig `json:"admission"`
	// Classes lists the client classes. At least one is required.
	Classes []ClassConfig `json:"classes"`
	// Template configures the synthetic job pool arrivals draw from; the
	// zero value selects workload.DefaultTraceConfig.
	Template workload.TraceConfig `json:"template"`
}

// Event kinds in the event queue. Completions sort before arrivals at the
// same slot so freed capacity is visible to planning triggered by the
// arrival.
const (
	kindCompletion = iota
	kindArrival
)

// activeJob is one job instance moving through the serving loop.
type activeJob struct {
	name     string
	class    int
	arrival  int64
	graph    *dag.Graph
	start    int64 // committed plan offset on the shared timeline
	makespan int64 // scheduler-planned makespan, the stretch denominator
}

// event is one entry of the simulated-clock event queue.
type event struct {
	time int64
	kind int
	seq  int64
	job  *activeJob
}

// eventQueue is a min-heap ordered by (time, kind, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// classState is the per-class runtime state.
type classState struct {
	cfg       ClassConfig
	proc      *workload.ArrivalProcess
	rng       *rand.Rand
	tenant    int // index into Server.tenants
	metrics   *obs.ServeClassMetrics
	generated int // arrivals drawn so far (scheduled or delivered)

	arrivals, rejected, completed int64
	jcts                          []int64
	jctSum, qdSum, stretchSum     float64
}

// tenantState aggregates stretch across all of a tenant's classes for the
// cross-tenant fairness index.
type tenantState struct {
	name       string
	stretchSum float64
	completed  int64
}

// Server is one serving run: construct with New, execute with Run.
type Server struct {
	cfg       Config
	scheduler sched.Scheduler
	admit     Admission
	spec      cluster.Spec
	space     *cluster.Multi
	templates []*dag.Graph
	classes   []*classState
	tenants   []*tenantState
	reg       *obs.Registry
	met       *obs.ServeMetrics

	events   eventQueue
	backlog  []*activeJob
	inflight int
	seq      int64
	clock    int64
	log      []LogEvent
	ran      bool
}

// New validates cfg, generates the job-template pool from the seed, and
// returns a Server ready to Run. A nil reg gets a private registry.
func New(cfg Config, scheduler sched.Scheduler, reg *obs.Registry) (*Server, error) {
	if scheduler == nil {
		return nil, errors.New("serve: nil scheduler")
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("serve: horizon %d must be >= 1", cfg.Horizon)
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("serve: maxInFlight %d must be >= 0", cfg.MaxInFlight)
	}
	if cfg.Machines < 0 {
		return nil, fmt.Errorf("serve: machines %d must be >= 0", cfg.Machines)
	}
	if len(cfg.Classes) == 0 {
		return nil, errors.New("serve: at least one class is required")
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = scheduler.Name()
	}
	if cfg.Template == (workload.TraceConfig{}) {
		cfg.Template = workload.DefaultTraceConfig()
	}
	admit, err := NewAdmission(cfg.Admission)
	if err != nil {
		return nil, err
	}

	trace, err := workload.GenerateTrace(rand.New(rand.NewSource(cfg.Seed)), cfg.Template)
	if err != nil {
		return nil, fmt.Errorf("serve: generating job templates: %w", err)
	}
	templates, err := trace.Graphs()
	if err != nil {
		return nil, fmt.Errorf("serve: building job templates: %w", err)
	}

	if reg == nil {
		reg = obs.NewRegistry()
	}
	machines := cfg.Machines
	if machines == 0 {
		machines = 1
	}
	spec := cluster.Uniform(machines, resource.Of(trace.Capacity...))
	s := &Server{
		cfg:       cfg,
		scheduler: scheduler,
		admit:     admit,
		spec:      spec,
		templates: templates,
		reg:       reg,
		met:       obs.NewServeMetrics(reg),
	}
	s.space, err = cluster.NewMulti(spec)
	if err != nil {
		return nil, err
	}

	seenClass := make(map[string]bool, len(cfg.Classes))
	tenantIdx := make(map[string]int)
	for i := range cfg.Classes {
		cc := cfg.Classes[i]
		if cc.Name == "" {
			return nil, fmt.Errorf("serve: class %d has no name", i)
		}
		if seenClass[cc.Name] {
			return nil, fmt.Errorf("serve: duplicate class %q", cc.Name)
		}
		seenClass[cc.Name] = true
		if cc.MaxJobs < 0 {
			return nil, fmt.Errorf("serve: class %q: maxJobs %d must be >= 0", cc.Name, cc.MaxJobs)
		}
		if cc.Tenant == "" {
			cc.Tenant = cc.Name
		}
		proc, err := workload.NewArrivalProcess(cc.Arrival)
		if err != nil {
			return nil, fmt.Errorf("serve: class %q: %w", cc.Name, err)
		}
		ti, ok := tenantIdx[cc.Tenant]
		if !ok {
			ti = len(s.tenants)
			tenantIdx[cc.Tenant] = ti
			s.tenants = append(s.tenants, &tenantState{name: cc.Tenant})
		}
		s.classes = append(s.classes, &classState{
			cfg:     cc,
			proc:    proc,
			rng:     rand.New(rand.NewSource(classSeed(cfg.Seed, i))),
			tenant:  ti,
			metrics: obs.NewServeClassMetrics(reg, cc.Name),
		})
		s.cfg.Classes[i] = cc // keep the normalized tenant in the logged config
	}
	return s, nil
}

// classSeed derives one independent seed per class from the run seed using
// golden-ratio increments, the same idiom as the MCTS root workers.
func classSeed(seed int64, class int) int64 {
	return seed + int64(uint64(class+1)*0x9E3779B97F4A7C15)
}

// Metrics returns a snapshot of the run's metrics registry.
func (s *Server) Metrics() obs.Snapshot { return s.reg.Snapshot() }

// Run executes the serving loop to completion: arrivals stop at the
// horizon, the backlog and in-flight jobs drain, and the run log is
// returned. Run consumes the server and may be called only once.
func (s *Server) Run() (*RunLog, error) {
	if s.ran {
		return nil, errors.New("serve: Run may be called only once per Server")
	}
	s.ran = true
	for ci := range s.classes {
		s.scheduleArrival(ci, 0)
	}
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.clock = ev.time
		s.met.Clock.Set(s.clock)
		// Drop occupancy strictly before the clock: the grid stays
		// proportional to the in-flight window, not the whole run.
		s.space.Advance(s.clock)
		switch ev.kind {
		case kindCompletion:
			s.complete(ev.job)
		default:
			s.arrive(ev.job)
			s.scheduleArrival(ev.job.class, ev.time)
		}
		if err := s.plan(); err != nil {
			return nil, err
		}
	}
	return s.finish(), nil
}

// scheduleArrival draws the class's next arrival after time from and
// enqueues it, unless the class hit its job cap or the horizon.
func (s *Server) scheduleArrival(ci int, from int64) {
	c := s.classes[ci]
	if c.cfg.MaxJobs > 0 && c.generated >= c.cfg.MaxJobs {
		return
	}
	t := from + c.proc.NextGap(c.rng)
	if t > s.cfg.Horizon {
		return
	}
	tmpl := c.rng.Intn(len(s.templates))
	job := &activeJob{
		name:    fmt.Sprintf("%s-%d", c.cfg.Name, c.generated),
		class:   ci,
		arrival: t,
		graph:   s.templates[tmpl],
	}
	c.generated++
	s.push(&event{time: t, kind: kindArrival, seq: s.nextSeq(), job: job})
}

func (s *Server) push(ev *event) { heap.Push(&s.events, ev) }

func (s *Server) nextSeq() int64 {
	s.seq++
	return s.seq
}

// arrive runs admission control on one arriving job.
func (s *Server) arrive(job *activeJob) {
	c := s.classes[job.class]
	s.met.Arrivals.Inc()
	c.metrics.Arrivals.Inc()
	c.arrivals++
	ev := LogEvent{Time: s.clock, Job: job.name, Class: c.cfg.Name, Tenant: c.cfg.Tenant}
	if !s.admit.Admit(s.clock) {
		s.met.Rejected.Inc()
		c.metrics.Rejected.Inc()
		c.rejected++
		ev.Kind = "reject"
		s.log = append(s.log, ev)
		return
	}
	s.met.Admitted.Inc()
	s.backlog = append(s.backlog, job)
	ev.Kind = "arrive"
	s.log = append(s.log, ev)
}

// plan is the per-event planning pass: it pulls backlog jobs in FIFO order
// while the in-flight cap allows, plans each with the scheduler, and
// commits the plan onto the shared timeline.
func (s *Server) plan() error {
	s.met.Replans.Inc()
	for len(s.backlog) > 0 && (s.cfg.MaxInFlight == 0 || s.inflight < s.cfg.MaxInFlight) {
		job := s.backlog[0]
		s.backlog = s.backlog[1:]
		if err := s.planJob(job); err != nil {
			return err
		}
	}
	s.met.Backlog.Set(int64(len(s.backlog)))
	return nil
}

// planJob asks the scheduler for a (relative) schedule of one job, packs
// it at the earliest offset that fits the current occupancy, and commits.
func (s *Server) planJob(job *activeJob) error {
	ctx := context.Background()
	if s.cfg.DecisionBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DecisionBudget)
		defer cancel()
	}
	plan, err := sched.ScheduleContext(ctx, s.scheduler, job.graph, s.spec)
	if plan == nil {
		return fmt.Errorf("serve: scheduling %s: %w", job.name, err)
	}
	// An exhausted budget returns the search's best incumbent alongside the
	// context error; the incumbent is a complete schedule, so use it.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("serve: scheduling %s: %w", job.name, err)
	}
	if err := sched.Validate(job.graph, s.spec, plan); err != nil {
		return fmt.Errorf("serve: %s produced an invalid plan for %s: %w", s.scheduler.Name(), job.name, err)
	}
	t0, err := s.commit(job.graph, plan)
	if err != nil {
		return fmt.Errorf("serve: packing %s: %w", job.name, err)
	}
	job.start = t0
	job.makespan = plan.Makespan

	s.inflight++
	s.met.Planned.Inc()
	s.met.InFlight.Set(int64(s.inflight))
	s.met.PlanTime.Observe(plan.Elapsed)
	c := s.classes[job.class]
	qd := t0 - job.arrival
	c.qdSum += float64(qd)
	c.metrics.QueueDelaySum.Add(float64(qd))
	s.push(&event{time: t0 + plan.Makespan, kind: kindCompletion, seq: s.nextSeq(), job: job})
	ev := LogEvent{
		Time: s.clock, Kind: "plan", Job: job.name,
		Class: c.cfg.Name, Tenant: c.cfg.Tenant,
		Start: t0, Makespan: plan.Makespan, QueueDelay: qd,
	}
	if s.cfg.DumpSchedules {
		ev.Schedule = plan
	}
	s.log = append(s.log, ev)
	return nil
}

// commit finds the earliest offset >= clock at which the whole plan fits
// the occupancy grid and places it there. The scan is bounded: the grid is
// empty at and after MaxBusy, where a Validate-checked plan always fits.
func (s *Server) commit(g *dag.Graph, plan *sched.Schedule) (int64, error) {
	for t0 := s.clock; ; t0++ {
		ok, err := s.tryPlace(g, plan, t0)
		if err != nil {
			return 0, err
		}
		if ok {
			return t0, nil
		}
		if t0 >= s.space.MaxBusy() {
			return 0, fmt.Errorf("validated plan does not fit the empty cluster at %d", t0)
		}
	}
}

// tryPlace tentatively places every task of the plan at offset t0, each on
// the machine its placement names, rolling the placements back if any task
// does not fit. Placing task by task (rather than FitsAt checks) accounts
// for the plan's tasks overlapping each other as well as the existing
// occupancy.
func (s *Server) tryPlace(g *dag.Graph, plan *sched.Schedule, t0 int64) (bool, error) {
	for i, p := range plan.Placements {
		task := g.Task(p.Task)
		if s.space.Place(p.Machine, t0+p.Start, task.Demand, task.Runtime) == nil {
			continue
		}
		for _, q := range plan.Placements[:i] {
			tq := g.Task(q.Task)
			if err := s.space.Remove(q.Machine, t0+q.Start, tq.Demand, tq.Runtime); err != nil {
				return false, fmt.Errorf("rollback at offset %d: %w", t0, err)
			}
		}
		return false, nil
	}
	return true, nil
}

// complete retires one finished job and updates the SLO metrics.
func (s *Server) complete(job *activeJob) {
	c := s.classes[job.class]
	s.inflight--
	s.met.Completed.Inc()
	s.met.InFlight.Set(int64(s.inflight))
	c.metrics.Completed.Inc()
	c.completed++

	jct := s.clock - job.arrival
	stretch := float64(jct) / float64(job.makespan)
	c.jctSum += float64(jct)
	c.stretchSum += stretch
	c.jcts = append(c.jcts, jct)
	c.metrics.JCTSum.Add(float64(jct))
	c.metrics.StretchSum.Add(stretch)
	if jain, err := stats.JainFairness(c.jcts); err == nil {
		c.metrics.JainFairness.Set(jain)
	}

	t := s.tenants[c.tenant]
	t.stretchSum += stretch
	t.completed++
	s.met.JainFairness.Set(s.globalJain())

	s.log = append(s.log, LogEvent{
		Time: s.clock, Kind: "complete", Job: job.name,
		Class: c.cfg.Name, Tenant: c.cfg.Tenant,
		Start: job.start, Makespan: job.makespan,
		JCT: jct, Stretch: stretch,
	})
}

// globalJain is Jain's index over the per-tenant mean stretches of the
// tenants that completed at least one job.
func (s *Server) globalJain() float64 {
	means := make([]float64, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t.completed > 0 {
			means = append(means, t.stretchSum/float64(t.completed))
		}
	}
	jain, err := stats.JainFairness(means)
	if err != nil {
		return 0
	}
	return jain
}

// finish assembles the run log from the drained loop.
func (s *Server) finish() *RunLog {
	sum := Summary{
		FinalClock:   s.clock,
		Arrivals:     s.met.Arrivals.Load(),
		Admitted:     s.met.Admitted.Load(),
		Rejected:     s.met.Rejected.Load(),
		Planned:      s.met.Planned.Load(),
		Completed:    s.met.Completed.Load(),
		JainFairness: s.globalJain(),
	}
	for _, c := range s.classes {
		cs := ClassSummary{
			Class:     c.cfg.Name,
			Tenant:    c.cfg.Tenant,
			Arrivals:  c.arrivals,
			Rejected:  c.rejected,
			Completed: c.completed,
		}
		if n := float64(c.completed); n > 0 {
			cs.MeanJCT = c.jctSum / n
			cs.MeanQueueDelay = c.qdSum / n
			cs.MeanStretch = c.stretchSum / n
			if jain, err := stats.JainFairness(c.jcts); err == nil {
				cs.Jain = jain
			}
		}
		sum.Classes = append(sum.Classes, cs)
	}
	return &RunLog{Config: s.cfg, Events: s.log, Summary: sum}
}
