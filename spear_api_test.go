package spear_test

import (
	"bytes"
	"strings"
	"testing"

	"spear"
)

// tinyTrainedModel trains the smallest useful model once per test binary.
var tinyModel *spear.Network

const tinyWindow = 4

func tinyFeatures() spear.Features {
	return spear.Features{Window: tinyWindow, Horizon: 8, Dims: 2}
}

func trainTinyModel(t *testing.T) *spear.Network {
	t.Helper()
	if tinyModel != nil {
		return tinyModel
	}
	net, curve, _, err := spear.TrainModel(spear.ModelConfig{
		Feat:         tinyFeatures(),
		TrainJobs:    2,
		TasksPerJob:  8,
		PretrainCfg:  spear.PretrainConfig{Epochs: 3},
		ReinforceCfg: spear.ReinforceConfig{Epochs: 2, Rollouts: 2},
		Seed:         1,
	}, nil)
	if err != nil {
		t.Fatalf("TrainModel: %v", err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve len = %d", len(curve))
	}
	tinyModel = net
	return net
}

func TestPublicAPIEndToEnd(t *testing.T) {
	// Build a job through the public API only.
	b := spear.NewJobBuilder(2)
	fetch := b.AddTask("fetch", 4, spear.Resources(300, 100))
	parse := b.AddTask("parse", 6, spear.Resources(500, 700))
	index := b.AddTask("index", 3, spear.Resources(400, 400))
	b.AddDep(fetch, parse)
	b.AddDep(fetch, index)
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	capacity := spear.Resources(1000, 1000)

	net := trainTinyModel(t)
	scheduler, err := spear.NewSpear(net, tinyFeatures(), spear.SpearConfig{InitialBudget: 20, MinBudget: 5, Seed: 1})
	if err != nil {
		t.Fatalf("NewSpear: %v", err)
	}
	schedule, err := scheduler.Schedule(job, spear.SingleMachine(capacity))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := spear.Validate(job, spear.SingleMachine(capacity), schedule); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if cp := spear.CriticalPath(job); schedule.Makespan < cp {
		t.Errorf("makespan %d below critical path %d", schedule.Makespan, cp)
	}
	if g := spear.Gantt(schedule, job, 40); !strings.Contains(g, "fetch") {
		t.Errorf("Gantt missing task name:\n%s", g)
	}
}

func TestAllPublicSchedulersAgreeOnChain(t *testing.T) {
	b := spear.NewJobBuilder(1)
	prev := b.AddTask("t0", 2, spear.Resources(5))
	for i := 1; i < 5; i++ {
		cur := b.AddTask("t", 2, spear.Resources(5))
		b.AddDep(prev, cur)
		prev = cur
	}
	job, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	capacity := spear.Resources(10)

	schedulers := []spear.Scheduler{
		spear.NewMCTS(spear.MCTSConfig{InitialBudget: 10, MinBudget: 2}),
		spear.NewTetris(),
		spear.NewSJF(),
		spear.NewCP(),
		spear.NewGraphene(),
		spear.NewRandom(1),
	}
	for _, s := range schedulers {
		out, err := s.Schedule(job, spear.SingleMachine(capacity))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if out.Makespan != 10 {
			t.Errorf("%s makespan = %d, want 10 (pure chain)", s.Name(), out.Makespan)
		}
	}
}

func TestModelSaveLoadThroughAPI(t *testing.T) {
	net := trainTinyModel(t)
	var buf bytes.Buffer
	if err := spear.SaveModel(&buf, net); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	loaded, err := spear.LoadModel(&buf)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if _, err := spear.NewSpear(loaded, tinyFeatures(), spear.SpearConfig{InitialBudget: 5, MinBudget: 2}); err != nil {
		t.Errorf("NewSpear with loaded model: %v", err)
	}
}

func TestWorkloadHelpers(t *testing.T) {
	cfg := spear.DefaultRandomJobConfig()
	cfg.NumTasks = 12
	job, err := spear.RandomJob(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if job.NumTasks() != 12 {
		t.Errorf("NumTasks = %d", job.NumTasks())
	}
	jobs, err := spear.RandomJobs(3, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Errorf("len = %d", len(jobs))
	}
	lb, err := spear.MakespanLowerBound(job, cfg.Capacity())
	if err != nil || lb <= 0 {
		t.Errorf("lower bound = %d, %v", lb, err)
	}

	mot, err := spear.MotivatingExample(100)
	if err != nil {
		t.Fatal(err)
	}
	if mot.NumTasks() != 8 {
		t.Errorf("motivating tasks = %d", mot.NumTasks())
	}

	tr, err := spear.GenerateTrace(5, spear.DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := spear.LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 99 {
		t.Errorf("trace jobs = %d", len(back.Jobs))
	}
}

func TestOptimalSolverThroughAPI(t *testing.T) {
	b := spear.NewJobBuilder(1)
	x := b.AddTask("x", 4, spear.Resources(1))
	y := b.AddTask("y", 4, spear.Resources(1))
	z := b.AddTask("z", 4, spear.Resources(1))
	_ = x
	_ = y
	_ = z
	job, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Three independent unit tasks on capacity 2: optimal is 8.
	out, err := spear.NewOptimal(0).Schedule(job, spear.SingleMachine(spear.Resources(2)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Makespan != 8 {
		t.Errorf("optimal = %d, want 8", out.Makespan)
	}
}

func TestExtendedSchedulerFamily(t *testing.T) {
	cfg := spear.DefaultRandomJobConfig()
	cfg.NumTasks = 20
	job, err := spear.RandomJob(21, cfg)
	if err != nil {
		t.Fatal(err)
	}
	capacity := cfg.Capacity()
	for _, s := range []spear.Scheduler{
		spear.NewHEFT(),
		spear.NewLPT(),
		spear.NewBLoadList(),
		spear.NewLevelByLevel(),
		spear.NewTetrisSRPT(0.5),
	} {
		out, err := s.Schedule(job, spear.SingleMachine(capacity))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := spear.Validate(job, spear.SingleMachine(capacity), out); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestJobJSONAndSVGThroughAPI(t *testing.T) {
	b := spear.NewJobBuilder(1)
	x := b.AddTask("x", 2, spear.Resources(4))
	y := b.AddTask("y", 3, spear.Resources(4))
	b.AddDep(x, y)
	job, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := spear.SaveJob(&buf, job, "mini"); err != nil {
		t.Fatal(err)
	}
	back, name, err := spear.LoadJob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mini" || back.NumTasks() != 2 {
		t.Errorf("round trip: name=%q tasks=%d", name, back.NumTasks())
	}

	out, err := spear.NewCP().Schedule(job, spear.SingleMachine(spear.Resources(10)))
	if err != nil {
		t.Fatal(err)
	}
	var svg bytes.Buffer
	if err := spear.WriteScheduleSVG(&svg, out, job, 400, 14); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Errorf("not an SVG")
	}
}

func TestUntrainedNetworkIsUsable(t *testing.T) {
	net, err := spear.NewNetwork(tinyFeatures(), 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spear.NewSpear(net, tinyFeatures(), spear.SpearConfig{InitialBudget: 10, MinBudget: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := spear.DefaultRandomJobConfig()
	cfg.NumTasks = 10
	job, err := spear.RandomJob(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Schedule(job, spear.SingleMachine(cfg.Capacity()))
	if err != nil {
		t.Fatal(err)
	}
	if err := spear.Validate(job, spear.SingleMachine(cfg.Capacity()), out); err != nil {
		t.Error(err)
	}
}
