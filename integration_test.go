package spear_test

import (
	"testing"

	"spear"
)

// TestIntegrationTracePipeline exercises the whole system end to end
// through the public API: generate the synthetic production trace, train a
// small policy, schedule trace jobs with Spear and Graphene, validate every
// schedule and sanity-check the utilization metrics.
func TestIntegrationTracePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}

	trace, err := spear.GenerateTrace(42, spear.DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := trace.Graphs()
	if err != nil {
		t.Fatal(err)
	}
	capacity := spear.Vector(trace.Capacity)

	net := trainTinyModel(t)
	spearSched, err := spear.NewSpear(net, tinyFeatures(), spear.SpearConfig{
		InitialBudget: 20, MinBudget: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	graphene := spear.NewGraphene()

	for i := 0; i < 3; i++ {
		job := graphs[i]
		for _, s := range []spear.Scheduler{spearSched, graphene} {
			out, err := s.Schedule(job, spear.SingleMachine(capacity))
			if err != nil {
				t.Fatalf("%s on job %d: %v", s.Name(), i, err)
			}
			if err := spear.Validate(job, spear.SingleMachine(capacity), out); err != nil {
				t.Fatalf("%s on job %d: %v", s.Name(), i, err)
			}
			lb, err := spear.MakespanLowerBound(job, capacity)
			if err != nil {
				t.Fatal(err)
			}
			if out.Makespan < lb {
				t.Errorf("%s on job %d: makespan %d below bound %d", s.Name(), i, out.Makespan, lb)
			}
			u, err := spear.ComputeUtilization(job, spear.SingleMachine(capacity), out)
			if err != nil {
				t.Fatal(err)
			}
			if u.Mean <= 0 || u.Mean > 1 {
				t.Errorf("%s on job %d: utilization %v out of (0, 1]", s.Name(), i, u.Mean)
			}
		}
	}
}

// TestIntegrationMotivatingGap verifies the paper's headline qualitative
// claim end to end: search-based scheduling beats every heuristic on the
// motivating example by roughly the 3T/2T ratio.
func TestIntegrationMotivatingGap(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	job, err := spear.MotivatingExample(100)
	if err != nil {
		t.Fatal(err)
	}
	capacity := spear.MotivatingCapacity()

	search := spear.NewMCTS(spear.MCTSConfig{InitialBudget: 3000, MinBudget: 300, Seed: 1})
	searchOut, err := search.Schedule(job, spear.SingleMachine(capacity))
	if err != nil {
		t.Fatal(err)
	}

	worst := int64(0)
	for _, s := range []spear.Scheduler{spear.NewGraphene(), spear.NewTetris(), spear.NewCP(), spear.NewSJF()} {
		out, err := s.Schedule(job, spear.SingleMachine(capacity))
		if err != nil {
			t.Fatal(err)
		}
		if out.Makespan > worst {
			worst = out.Makespan
		}
		if out.Makespan <= searchOut.Makespan {
			t.Errorf("%s (%d) not worse than search (%d)", s.Name(), out.Makespan, searchOut.Makespan)
		}
	}
	ratio := float64(worst) / float64(searchOut.Makespan)
	if ratio < 1.3 {
		t.Errorf("gap ratio %.2f, want ~1.5 (3T vs 2T)", ratio)
	}
}
