package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spear/internal/lint"
)

// moduleRoot lets the tests resolve patterns exactly like a repo-root
// invocation would.
const moduleRoot = "../.."

func TestRunCleanExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(moduleRoot, []string{"internal/obs"}, false, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, false, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("stdout missing [floateq] diagnostics:\n%s", out.String())
	}
}

func TestRunLoadErrorExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/broken"}, false, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "spear-vet:") {
		t.Errorf("stderr missing load error:\n%s", errOut.String())
	}
}

func TestRunJSONFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, true, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON array is empty, want findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Check == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(moduleRoot, []string{"internal/obs"}, true, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}
