package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spear/internal/lint"
)

// moduleRoot lets the tests resolve patterns exactly like a repo-root
// invocation would.
const moduleRoot = "../.."

func TestRunCleanExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(moduleRoot, []string{"internal/obs"}, "", false, "", &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, "floateq", false, "", &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("stdout missing [floateq] diagnostics:\n%s", out.String())
	}
}

func TestRunLoadErrorExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/broken"}, "", false, "", &out, &errOut)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "spear-vet:") {
		t.Errorf("stderr missing load error:\n%s", errOut.String())
	}
}

// TestListChecks pins the -list catalog: one row per registered check, each
// with a description, and the marker grammar printed for the checks that
// consume annotations.
func TestListChecks(t *testing.T) {
	var out bytes.Buffer
	listChecks(&out)
	text := out.String()
	for _, name := range lint.AllChecks {
		if !strings.Contains(text, name) {
			t.Errorf("-list output missing check %q:\n%s", name, text)
		}
	}
	for _, marker := range []string{"spear:ignoreerr(reason)", "spear:nopoll(reason)", "spear:guardedby(mu)"} {
		if !strings.Contains(text, marker) {
			t.Errorf("-list output missing marker grammar %q:\n%s", marker, text)
		}
	}
	if len(lint.Checks()) != len(lint.AllChecks) {
		t.Errorf("Checks() has %d entries, AllChecks has %d", len(lint.Checks()), len(lint.AllChecks))
	}
}

func TestRunUnknownCheckExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/obs"}, "nosuchcheck", false, "", &out, &errOut)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "unknown check") {
		t.Errorf("stderr missing unknown-check error:\n%s", errOut.String())
	}
}

// TestRunCheckSelector pins down that -check restricts the run to the named
// passes: the floateq fixture is dirty under floateq but clean under metrics.
func TestRunCheckSelector(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, "metrics", false, "", &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("disabled checks still reported:\n%s", out.String())
	}
}

func TestRunJSONFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, "floateq", true, "", &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if len(rep.Diagnostics) == 0 {
		t.Fatal("diagnostics array is empty, want findings")
	}
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Check == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if rep.PackagesLoaded < 1 {
		t.Errorf("packages_loaded = %d, want >= 1", rep.PackagesLoaded)
	}
	var timed []string
	for _, c := range rep.Checks {
		if c.Millis < 0 {
			t.Errorf("check %q has negative timing %v", c.Check, c.Millis)
		}
		timed = append(timed, c.Check)
	}
	for _, want := range []string{"load", "floateq"} {
		found := false
		for _, got := range timed {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("timings %v missing phase %q", timed, want)
		}
	}
}

// TestRunJSONCheckFindingCounts pins the per-check finding counts of the
// checks array: the dirty check carries its findings, the load row stays 0.
func TestRunJSONCheckFindingCounts(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, "floateq,metrics", true, "", &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	counts := make(map[string]int)
	for _, c := range rep.Checks {
		counts[c.Check] = c.Findings
	}
	if counts["floateq"] != len(rep.Diagnostics) {
		t.Errorf("floateq findings = %d, want %d (all diagnostics)", counts["floateq"], len(rep.Diagnostics))
	}
	if counts["metrics"] != 0 {
		t.Errorf("metrics findings = %d, want 0", counts["metrics"])
	}
	if counts["load"] != 0 {
		t.Errorf("load row findings = %d, want 0", counts["load"])
	}
}

// TestRunSummaryLine pins the one-line stderr summary CI echoes on success.
func TestRunSummaryLine(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(moduleRoot, []string{"internal/obs"}, "metrics,floateq", false, "", &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if want := "spear-vet: 0 findings across 2 checks, 1 packages\n"; errOut.String() != want {
		t.Errorf("summary = %q, want %q", errOut.String(), want)
	}
}

// TestRunSARIF runs a dirty fixture with -sarif and checks the log shape:
// version, driver name, a rules table covering every check, and one
// error-level result per diagnostic with a module-relative location.
func TestRunSARIF(t *testing.T) {
	var out, errOut bytes.Buffer
	sarifPath := filepath.Join(t.TempDir(), "vet.sarif")
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, "floateq", false, sarifPath, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF file is not JSON: %v\n%s", err, data)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "spear-vet" {
		t.Errorf("driver name = %q, want spear-vet", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != len(lint.AllChecks) {
		t.Errorf("rules = %d, want %d (one per check)", len(r.Tool.Driver.Rules), len(lint.AllChecks))
	}
	if len(r.Results) == 0 {
		t.Fatal("SARIF results are empty, want findings")
	}
	for _, res := range r.Results {
		if res.RuleID != "floateq" || res.Level != "error" {
			t.Errorf("result ruleId=%q level=%q, want floateq/error", res.RuleID, res.Level)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if !strings.HasPrefix(loc.ArtifactLocation.URI, "internal/lint/testdata/src/floateq/") {
			t.Errorf("artifact uri = %q, want module-relative fixture path", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine == 0 {
			t.Errorf("result missing startLine: %+v", loc)
		}
	}
}

func TestRunJSONCleanIsEmptyDiagnostics(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(moduleRoot, []string{"internal/obs"}, "metrics", true, "", &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	var rep struct {
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Diagnostics == nil {
		t.Error(`clean -json report has "diagnostics": null, want []`)
	}
	if len(rep.Diagnostics) != 0 {
		t.Errorf("clean run reported diagnostics: %+v", rep.Diagnostics)
	}
}
