package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spear/internal/lint"
)

// moduleRoot lets the tests resolve patterns exactly like a repo-root
// invocation would.
const moduleRoot = "../.."

func TestRunCleanExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(moduleRoot, []string{"internal/obs"}, "", false, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, "floateq", false, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("stdout missing [floateq] diagnostics:\n%s", out.String())
	}
}

func TestRunLoadErrorExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/broken"}, "", false, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "spear-vet:") {
		t.Errorf("stderr missing load error:\n%s", errOut.String())
	}
}

func TestRunUnknownCheckExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/obs"}, "nosuchcheck", false, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "unknown check") {
		t.Errorf("stderr missing unknown-check error:\n%s", errOut.String())
	}
}

// TestRunCheckSelector pins down that -check restricts the run to the named
// passes: the floateq fixture is dirty under floateq but clean under metrics.
func TestRunCheckSelector(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, "metrics", false, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("disabled checks still reported:\n%s", out.String())
	}
}

func TestRunJSONFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(moduleRoot, []string{"internal/lint/testdata/src/floateq"}, "floateq", true, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if len(rep.Diagnostics) == 0 {
		t.Fatal("diagnostics array is empty, want findings")
	}
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Check == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if rep.PackagesLoaded < 1 {
		t.Errorf("packages_loaded = %d, want >= 1", rep.PackagesLoaded)
	}
	var timed []string
	for _, c := range rep.Checks {
		if c.Millis < 0 {
			t.Errorf("check %q has negative timing %v", c.Check, c.Millis)
		}
		timed = append(timed, c.Check)
	}
	for _, want := range []string{"load", "floateq"} {
		found := false
		for _, got := range timed {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("timings %v missing phase %q", timed, want)
		}
	}
}

func TestRunJSONCleanIsEmptyDiagnostics(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(moduleRoot, []string{"internal/obs"}, "metrics", true, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	var rep struct {
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Diagnostics == nil {
		t.Error(`clean -json report has "diagnostics": null, want []`)
	}
	if len(rep.Diagnostics) != 0 {
		t.Errorf("clean run reported diagnostics: %+v", rep.Diagnostics)
	}
}
