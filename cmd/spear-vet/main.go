// Command spear-vet runs the repository's custom static analysis (package
// internal/lint) over the given package patterns and reports file:line:col
// diagnostics for every violated invariant: determinism, zero-allocation
// fast paths, metrics naming and float equality.
//
// Usage:
//
//	go run ./cmd/spear-vet [-json] [packages]
//
// Patterns follow the go tool's convention ("./...", "internal/mcts",
// "internal/..."); no patterns means "./...". Exit status: 0 when clean,
// 1 when findings were reported, 2 when a package failed to load or
// type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"spear/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spear-vet [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(".", flag.Args(), *jsonOut, os.Stdout, os.Stderr))
}

// run resolves the patterns against base, analyzes the packages and reports
// the diagnostics, returning the process exit code: 0 clean, 1 findings,
// 2 load or type-check failure.
func run(base string, patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	dirs, err := lint.ExpandPatterns(base, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "spear-vet: %v\n", err)
		return 2
	}
	diags, err := lint.AnalyzeDirs(dirs, lint.Config{})
	if err != nil {
		fmt.Fprintf(stderr, "spear-vet: %v\n", err)
		return 2
	}
	if jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // render [] rather than null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "spear-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
