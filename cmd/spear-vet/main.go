// Command spear-vet runs the repository's custom static analysis (package
// internal/lint) over the given package patterns and reports file:line:col
// diagnostics for every violated invariant: determinism, zero-allocation
// fast paths, metrics naming, float equality, and the interprocedural
// call-graph checks (transitive noalloc, determinism taint, hot-struct
// layout, dead internal exports).
//
// Usage:
//
//	go run ./cmd/spear-vet [-json] [-sarif file] [-check names] [packages]
//
// Patterns follow the go tool's convention ("./...", "internal/mcts",
// "internal/..."); no patterns means "./...". -check selects a
// comma-separated subset of the checks; the default is all of them.
// -sarif additionally writes the findings as a SARIF 2.1.0 log to the given
// file, for GitHub code-scanning upload. Every run ends with a one-line
// summary on stderr ("N findings across M checks, P packages").
// Exit status: 0 when clean, 1 when findings were reported, 2 when a
// package failed to load or type-check.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"spear/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit a JSON report (diagnostics, packages_loaded, per-check timings and finding counts) on stdout")
	sarifOut := flag.String("sarif", "", "also write the findings as a SARIF 2.1.0 log to this file")
	checks := flag.String("check", "", "comma-separated subset of checks to run (default all: "+strings.Join(lint.AllChecks, ",")+")")
	list := flag.Bool("list", false, "list every check with its description and marker grammar, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spear-vet [-json] [-sarif file] [-check names] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		listChecks(os.Stdout)
		os.Exit(0)
	}
	os.Exit(run(".", flag.Args(), *checks, *jsonOut, *sarifOut, os.Stdout, os.Stderr))
}

// listChecks prints the check catalog: name, one-line description, and the
// marker grammar each check consumes.
func listChecks(w io.Writer) {
	for _, c := range lint.Checks() {
		fmt.Fprintf(w, "%-20s %s\n", c.Name, c.Desc)
		if c.Markers != "" {
			fmt.Fprintf(w, "%-20s markers: %s\n", "", c.Markers)
		}
	}
}

// report is the -json output shape: the findings plus run statistics, so CI
// can watch analysis cost without parsing the human-readable log.
type report struct {
	Diagnostics    []lint.Diagnostic  `json:"diagnostics"`
	PackagesLoaded int                `json:"packages_loaded"`
	Checks         []lint.CheckTiming `json:"checks"`
}

// run resolves the patterns against base, analyzes the packages and reports
// the diagnostics, returning the process exit code: 0 clean, 1 findings,
// 2 load or type-check failure.
func run(base string, patterns []string, checks string, jsonOut bool, sarifPath string, stdout, stderr io.Writer) int {
	dirs, err := lint.ExpandPatterns(base, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "spear-vet: %v\n", err)
		return 2
	}
	var cfg lint.Config
	if checks != "" {
		for _, c := range strings.Split(checks, ",") {
			if c = strings.TrimSpace(c); c != "" {
				cfg.Checks = append(cfg.Checks, c)
			}
		}
	}
	r, err := lint.NewRunner(base, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "spear-vet: %v\n", err)
		return 2
	}
	diags, stats, err := r.Analyze(dirs)
	if err != nil {
		fmt.Fprintf(stderr, "spear-vet: %v\n", err)
		return 2
	}
	if jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // render [] rather than null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		out := report{Diagnostics: diags, PackagesLoaded: stats.PackagesLoaded, Checks: stats.Checks}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "spear-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if sarifPath != "" {
		f, err := os.Create(sarifPath)
		if err != nil {
			fmt.Fprintf(stderr, "spear-vet: %v\n", err)
			return 2
		}
		werr := errors.Join(lint.WriteSARIF(f, diags), f.Close())
		if werr != nil {
			fmt.Fprintf(stderr, "spear-vet: writing %s: %v\n", sarifPath, werr)
			return 2
		}
	}
	// checksRun counts real analysis passes, not the load/callgraph
	// scaffolding rows that share the timing table.
	checksRun := 0
	known := make(map[string]bool, len(lint.AllChecks))
	for _, c := range lint.AllChecks {
		known[c] = true
	}
	for _, c := range stats.Checks {
		if known[c.Check] {
			checksRun++
		}
	}
	fmt.Fprintf(stderr, "spear-vet: %d findings across %d checks, %d packages\n", len(diags), checksRun, len(dirs))
	if len(diags) > 0 {
		return 1
	}
	return 0
}
