// Command spear-sim schedules randomly generated jobs (or the paper's
// motivating example) with any of the implemented algorithms and prints the
// resulting makespans side by side.
//
// Usage:
//
//	spear-sim -n 10 -tasks 100 -algos spear,graphene,tetris,cp,sjf
//	spear-sim -n 10 -machines 4 -algos heft,tetris,cp
//	spear-sim -motivating -algos spear,graphene
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"spear"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spear-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n          = flag.Int("n", 5, "number of random jobs")
		tasks      = flag.Int("tasks", 100, "tasks per job")
		algos      = flag.String("algos", "spear,graphene,tetris,cp,sjf", "comma-separated algorithms (spear,mcts,graphene,tetris,cp,sjf,random,heft,lpt,bload,level,tetris-srpt)")
		budget     = flag.Int("budget", 150, "initial search budget for spear/mcts")
		minBudget  = flag.Int("min-budget", 30, "minimum decayed budget for spear/mcts")
		seed       = flag.Int64("seed", 1, "random seed")
		modelPath  = flag.String("model", "", "trained model for spear (trains a quick one when empty)")
		motivating = flag.Bool("motivating", false, "run the paper's Fig. 3 motivating example instead of random jobs")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart per schedule")
		jobPath    = flag.String("job", "", "schedule a job described by this JSON file instead of random jobs")
		capFlag    = flag.String("capacity", "", "cluster capacity for -job, comma-separated (e.g. 1000,1000)")
		svgPath    = flag.String("svg", "", "write the first scheduler's first schedule as SVG to this path")
		metrics    = flag.Bool("metrics", false, "print a Prometheus-format metrics snapshot after the run")
		machines   = flag.Int("machines", 1, "number of identical machines, each with the full capacity vector")
	)
	flag.Parse()

	jobs, capacity, err := buildJobs(*motivating, *jobPath, *capFlag, *n, *tasks, *seed)
	if err != nil {
		return err
	}
	if *machines < 1 {
		return fmt.Errorf("machines %d must be >= 1", *machines)
	}
	spec := spear.UniformCluster(*machines, capacity)

	var reg *spear.MetricsRegistry
	if *metrics {
		// One shared registry: every search-based scheduler aggregates into
		// it, and the snapshot below covers the whole run.
		reg = spear.NewMetricsRegistry()
	}
	names := strings.Split(*algos, ",")
	schedulers := make([]spear.Scheduler, 0, len(names))
	for _, name := range names {
		s, err := buildScheduler(strings.TrimSpace(name), *budget, *minBudget, *seed, *modelPath, reg)
		if err != nil {
			return err
		}
		schedulers = append(schedulers, s)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "job")
	for _, s := range schedulers {
		fmt.Fprintf(w, "\t%s", s.Name())
	}
	fmt.Fprintln(w)
	totals := make([]int64, len(schedulers))
	for ji, job := range jobs {
		fmt.Fprintf(w, "%d", ji)
		for si, s := range schedulers {
			out, err := s.Schedule(job, spec)
			if err != nil {
				return fmt.Errorf("%s on job %d: %w", s.Name(), ji, err)
			}
			if err := spear.Validate(job, spec, out); err != nil {
				return fmt.Errorf("%s produced an invalid schedule on job %d: %w", s.Name(), ji, err)
			}
			totals[si] += out.Makespan
			fmt.Fprintf(w, "\t%d", out.Makespan)
			if *gantt {
				defer fmt.Print(spear.Gantt(out, job, 60))
			}
			if *svgPath != "" && ji == 0 && si == 0 {
				if err := writeSVGFile(*svgPath, out, job); err != nil {
					return err
				}
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "avg")
	for _, total := range totals {
		fmt.Fprintf(w, "\t%.1f", float64(total)/float64(len(jobs)))
	}
	fmt.Fprintln(w)
	if err := w.Flush(); err != nil {
		return err
	}
	if reg != nil {
		fmt.Println()
		if err := reg.Snapshot().WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func buildJobs(motivating bool, jobPath, capFlag string, n, tasks int, seed int64) ([]*spear.Job, spear.Vector, error) {
	if jobPath != "" {
		f, err := os.Open(jobPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close() //spear:ignoreerr(read-only file; a close error loses no data)
		job, _, err := spear.LoadJob(f)
		if err != nil {
			return nil, nil, err
		}
		capacity, err := parseCapacity(capFlag, job.Dims())
		if err != nil {
			return nil, nil, err
		}
		return []*spear.Job{job}, capacity, nil
	}
	if motivating {
		job, err := spear.MotivatingExample(100)
		if err != nil {
			return nil, nil, err
		}
		return []*spear.Job{job}, spear.MotivatingCapacity(), nil
	}
	cfg := spear.DefaultRandomJobConfig()
	cfg.NumTasks = tasks
	jobs, err := spear.RandomJobs(seed, cfg, n)
	if err != nil {
		return nil, nil, err
	}
	return jobs, cfg.Capacity(), nil
}

// writeSVGFile renders one schedule as an SVG Gantt chart.
func writeSVGFile(path string, s *spear.Schedule, job *spear.Job) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spear.WriteScheduleSVG(f, s, job, 900, 16); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// parseCapacity parses "a,b,..." into a vector with the given dimensions;
// empty input defaults to 1000 units per dimension.
func parseCapacity(s string, dims int) (spear.Vector, error) {
	if s == "" {
		out := make(spear.Vector, dims)
		for i := range out {
			out[i] = 1000
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != dims {
		return nil, fmt.Errorf("capacity has %d dimensions, job needs %d", len(parts), dims)
	}
	out := make(spear.Vector, dims)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("capacity %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func buildScheduler(name string, budget, minBudget int, seed int64, modelPath string, reg *spear.MetricsRegistry) (spear.Scheduler, error) {
	switch name {
	case "spear":
		net, feat, err := loadOrTrainModel(modelPath, seed)
		if err != nil {
			return nil, err
		}
		return spear.NewSpear(net, feat, spear.SpearConfig{InitialBudget: budget, MinBudget: minBudget, Seed: seed, Obs: reg})
	case "mcts":
		return spear.NewMCTS(spear.MCTSConfig{InitialBudget: budget, MinBudget: minBudget, Seed: seed, Obs: reg}), nil
	case "graphene":
		return spear.NewGraphene(), nil
	case "tetris":
		return spear.NewTetris(), nil
	case "cp":
		return spear.NewCP(), nil
	case "sjf":
		return spear.NewSJF(), nil
	case "random":
		return spear.NewRandom(seed), nil
	case "heft":
		return spear.NewHEFT(), nil
	case "lpt":
		return spear.NewLPT(), nil
	case "bload":
		return spear.NewBLoadList(), nil
	case "level":
		return spear.NewLevelByLevel(), nil
	case "tetris-srpt":
		return spear.NewTetrisSRPT(1), nil
	case "anneal":
		return spear.NewAnnealing(500, seed), nil
	case "optimal":
		s := spear.NewOptimal(0)
		s.Obs = reg
		return s, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// loadOrTrainModel reads a saved model, or trains a small one on the fly so
// that spear-sim works out of the box.
func loadOrTrainModel(path string, seed int64) (*spear.Network, spear.Features, error) {
	feat := spear.DefaultFeatures()
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, feat, err
		}
		defer f.Close() //spear:ignoreerr(read-only file; a close error loses no data)
		net, err := spear.LoadModel(f)
		if err != nil {
			return nil, feat, err
		}
		if net.InputSize() != feat.InputSize() {
			return nil, feat, fmt.Errorf("model %s does not match the default featurization; retrain with spear-train", path)
		}
		return net, feat, nil
	}
	fmt.Fprintln(os.Stderr, "spear-sim: no -model given; training a quick policy (use spear-train for a better one)")
	net, _, _, err := spear.TrainModel(spear.ModelConfig{
		TrainJobs:    8,
		TasksPerJob:  20,
		PretrainCfg:  spear.PretrainConfig{Epochs: 8},
		ReinforceCfg: spear.ReinforceConfig{Epochs: 10, Rollouts: 8},
		Seed:         seed,
	}, nil)
	return net, feat, err
}
