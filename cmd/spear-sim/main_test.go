package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spear"
)

func TestParseCapacity(t *testing.T) {
	v, err := parseCapacity("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1000 || v[1] != 1000 {
		t.Errorf("default capacity = %v", v)
	}

	v, err = parseCapacity("10, 20", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 10 || v[1] != 20 {
		t.Errorf("parsed = %v", v)
	}

	if _, err := parseCapacity("10", 2); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := parseCapacity("x,y", 2); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestBuildSchedulerNames(t *testing.T) {
	for _, name := range []string{"mcts", "graphene", "tetris", "cp", "sjf", "random", "heft", "lpt", "bload", "level", "tetris-srpt", "anneal", "optimal"} {
		s, err := buildScheduler(name, 10, 2, 1, "", nil)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s == nil || s.Name() == "" {
			t.Errorf("%s: bad scheduler", name)
		}
	}
	if _, err := buildScheduler("bogus", 10, 2, 1, "", nil); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestBuildJobsFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	body := `{"name":"j","dims":1,"tasks":[{"name":"a","runtime":2,"demand":[5]},{"name":"b","runtime":3,"demand":[5]}],"edges":[[0,1]]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, capacity, err := buildJobs(false, path, "10", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].NumTasks() != 2 {
		t.Fatalf("jobs = %v", jobs)
	}
	if capacity[0] != 10 {
		t.Errorf("capacity = %v", capacity)
	}

	if _, _, err := buildJobs(false, filepath.Join(dir, "missing.json"), "", 0, 0, 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildJobsMotivatingAndRandom(t *testing.T) {
	jobs, capacity, err := buildJobs(true, "", "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].NumTasks() != 8 || capacity[0] != 1000 {
		t.Errorf("motivating: %d jobs, capacity %v", len(jobs), capacity)
	}

	jobs, _, err = buildJobs(false, "", "", 3, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 || jobs[0].NumTasks() != 12 {
		t.Errorf("random: %d jobs x %d tasks", len(jobs), jobs[0].NumTasks())
	}
}

func TestWriteSVGFile(t *testing.T) {
	jobs, capacity, err := buildJobs(false, "", "", 1, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := spear.NewTetris().Schedule(jobs[0], spear.SingleMachine(capacity))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.svg")
	if err := writeSVGFile(path, out, jobs[0]); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Errorf("not an SVG: %.60s", data)
	}
}
