// Command spear-bench runs the repository's performance trajectory suite —
// the hot paths whose regressions matter: single-row and batched network
// inference, batched REINFORCE backprop, and the MCTS decision loop at
// several root- and tree-parallelism degrees plus a 4-machine cluster cell
// — and writes the results as one JSON document (BENCH_spear.json at the
// repo root) so successive commits can be compared.
//
// With -compare the run becomes a regression gate: every sims/sec row of
// the baseline report must reach at least -tolerance times its baseline
// rate or the command exits non-zero (how CI fails on search slowdowns).
//
// Usage:
//
//	spear-bench                      # full sizes, writes BENCH_spear.json
//	spear-bench -quick -out bench.json
//	spear-bench -quick -out bench.json -compare BENCH_spear.json -tolerance 0.85
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"spear/internal/cluster"
	"spear/internal/drl"
	"spear/internal/mcts"
	"spear/internal/workload"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SimsPerSec is the rollout throughput for search benchmarks (zero
	// elsewhere) — the metric the root-parallel acceptance target is
	// phrased in.
	SimsPerSec float64 `json:"sims_per_sec,omitempty"`
	// RowsPerSec is the row throughput for batched-inference benchmarks.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
}

// Report is the whole run, with enough machine context to make cross-commit
// comparisons honest.
type Report struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Quick      bool      `json:"quick"`
	Timestamp  time.Time `json:"timestamp"`
	Results    []Result  `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spear-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "BENCH_spear.json", "path to write the JSON report")
		quick     = flag.Bool("quick", false, "shrink problem sizes for a smoke run (CI)")
		compareTo = flag.String("compare", "", "baseline report to gate against (empty = no gate)")
		tolerance = flag.Float64("tolerance", 0.85, "minimum current/baseline sims-per-sec ratio accepted by -compare")
	)
	flag.Parse()

	feat := drl.Features{Window: 5, Horizon: 10, Dims: 2}
	net, err := drl.DefaultNetwork(feat, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	agent, err := drl.NewAgent(net, feat, false)
	if err != nil {
		return err
	}

	tasks, budget, minBudget := 30, 40, 10
	batchRows := 16
	if *quick {
		tasks, budget, minBudget = 15, 10, 5
		batchRows = 8
	}
	g, err := workload.RandomBatch(rand.New(rand.NewSource(1)), workload.RandomDAGConfig{
		NumTasks: tasks, MinWidth: 2, MaxWidth: 5, Dims: 2,
		MaxRuntime: 20, MaxDemand: 20, MaxParents: 3,
	}, 1)
	if err != nil {
		return err
	}
	graph := g[0]
	capacity := workload.DefaultRandomDAGConfig().Capacity()

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Timestamp:  time.Now().UTC(),
	}

	// Single-row inference: the per-step cost of every rollout action.
	{
		scratch := net.NewScratch()
		in := net.InputSize()
		x := make([]float64, in)
		for i := range x {
			x[i] = float64(i%7) * 0.1
		}
		report.Results = append(report.Results, measure("nn_forward_single", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.ForwardInto(scratch, x); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Batched inference: the root-parallel / lock-step rollout fast path.
	{
		scratch := net.NewScratch()
		in := net.InputSize()
		x := make([]float64, batchRows*in)
		for i := range x {
			x[i] = float64(i%11) * 0.05
		}
		report.Results = append(report.Results, measure("nn_forward_batch", batchRows, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.ForwardBatchInto(scratch, x, batchRows); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Batched backprop: the REINFORCE gradient chunk.
	{
		scratch := net.NewScratch()
		in, out := net.InputSize(), net.OutputSize()
		x := make([]float64, batchRows*in)
		d := make([]float64, batchRows*out)
		for i := range x {
			x[i] = float64(i%11) * 0.05
		}
		for i := range d {
			d[i] = float64(i%5-2) * 0.01
		}
		grads := net.NewGrads()
		report.Results = append(report.Results, measure("nn_backward_batch", batchRows, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.ForwardBatchInto(scratch, x, batchRows); err != nil {
					b.Fatal(err)
				}
				if err := net.BackwardBatchInto(scratch, d, batchRows, grads); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// searchCell benchmarks one scheduler configuration's full decision
	// loop and reports its rollout throughput.
	searchCell := func(name string, spec cluster.Spec, cfg mcts.Config) {
		s := mcts.New(cfg)
		var rollouts int64
		var elapsed float64
		r := measure(name, 0, func(b *testing.B) {
			rollouts, elapsed = 0, 0
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(graph, spec); err != nil {
					b.Fatal(err)
				}
				st := s.LastStats()
				rollouts += st.Rollouts
				elapsed += st.Elapsed.Seconds()
			}
		})
		if elapsed > 0 {
			r.SimsPerSec = float64(rollouts) / elapsed
		}
		report.Results = append(report.Results, r)
	}

	// The MCTS decision loop with DRL rollouts at increasing root
	// parallelism. SimsPerSec here is the acceptance metric: on a >=4-core
	// machine K=4 should reach >=1.8x the K=1 rate.
	for _, k := range []int{1, 2, 4} {
		searchCell(fmt.Sprintf("mcts_schedule_root_k%d", k), cluster.Single(capacity), mcts.Config{
			InitialBudget: budget, MinBudget: minBudget, Seed: 1,
			Rollout: agent, Window: feat.Window,
			RootParallelism: k,
		})
	}

	// Tree parallelism: J workers sharing one arena-allocated tree. The
	// J=4 row is the shared-tree acceptance metric (>=2x the J=1 rate on a
	// >=4-core machine).
	for _, j := range []int{1, 2, 4} {
		searchCell(fmt.Sprintf("mcts_schedule_tree_j%d", j), cluster.Single(capacity), mcts.Config{
			InitialBudget: budget, MinBudget: minBudget, Seed: 1,
			Rollout: agent, Window: feat.Window,
			TreeParallelism: j,
		})
	}

	// The transposition table on the serial tree: pooling statistics across
	// schedule orders costs one hash lookup per node creation.
	searchCell("mcts_schedule_tt", cluster.Single(capacity), mcts.Config{
		InitialBudget: budget, MinBudget: minBudget, Seed: 1,
		Rollout: agent, Window: feat.Window,
		UseTranspositions: true,
	})

	// The multi-machine hot path: the same search over a 4-machine uniform
	// cluster, whose slot|machine action space multiplies the branching
	// factor.
	searchCell("mcts_schedule_multi_m4", cluster.Uniform(4, capacity), mcts.Config{
		InitialBudget: budget, MinBudget: minBudget, Seed: 1,
		Rollout: agent, Window: feat.Window,
	})

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}

	for _, r := range report.Results {
		fmt.Printf("%-28s %12.0f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.SimsPerSec > 0 {
			fmt.Printf(" %10.0f sims/s", r.SimsPerSec)
		}
		if r.RowsPerSec > 0 {
			fmt.Printf(" %10.0f rows/s", r.RowsPerSec)
		}
		fmt.Println()
	}
	fmt.Printf("report written to %s\n", *out)

	if *compareTo != "" {
		if err := compare(*compareTo, report, *tolerance); err != nil {
			return err
		}
	}
	return nil
}

// compare gates the current report against a baseline: every baseline row
// with a sims/sec rate must be present and reach at least tolerance times
// its baseline rate. A missing row fails too — silently dropping a cell
// from the suite must not read as "no regression".
func compare(baselinePath string, current Report, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("compare baseline %s: %w", baselinePath, err)
	}
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	var failures []string
	fmt.Printf("comparing against %s (tolerance %.2f):\n", baselinePath, tolerance)
	for _, b := range base.Results {
		if b.SimsPerSec <= 0 {
			continue
		}
		c, ok := cur[b.Name]
		if !ok {
			fmt.Printf("  %-28s baseline %10.0f sims/s          MISSING\n", b.Name, b.SimsPerSec)
			failures = append(failures, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		ratio := c.SimsPerSec / b.SimsPerSec
		status := "ok"
		if ratio < tolerance {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f sims/s is %.2fx the baseline %.0f (floor %.2fx)",
				b.Name, c.SimsPerSec, ratio, b.SimsPerSec, tolerance))
		}
		fmt.Printf("  %-28s baseline %10.0f sims/s  current %10.0f (%.2fx) %s\n",
			b.Name, b.SimsPerSec, c.SimsPerSec, ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("sims/sec regression gate: %d row(s) failed:\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Println("regression gate passed")
	return nil
}

// measure runs one benchmark body through the standard library's timing
// machinery and converts the result. rows > 0 derives RowsPerSec for batch
// kernels.
func measure(name string, rows int, body func(b *testing.B)) Result {
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		body(b)
	})
	r := Result{
		Name:        name,
		Iterations:  br.N,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
	if rows > 0 && br.NsPerOp() > 0 {
		r.RowsPerSec = float64(rows) / (float64(br.NsPerOp()) * 1e-9)
	}
	return r
}
