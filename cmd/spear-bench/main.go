// Command spear-bench runs the repository's performance trajectory suite —
// the hot paths whose regressions matter: single-row and batched network
// inference, batched REINFORCE backprop, and the MCTS decision loop at
// several root-parallelism degrees — and writes the results as one JSON
// document (BENCH_spear.json in CI) so successive commits can be compared.
//
// Usage:
//
//	spear-bench                      # full sizes, writes BENCH_spear.json
//	spear-bench -quick -out bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"spear/internal/cluster"
	"spear/internal/drl"
	"spear/internal/mcts"
	"spear/internal/workload"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SimsPerSec is the rollout throughput for search benchmarks (zero
	// elsewhere) — the metric the root-parallel acceptance target is
	// phrased in.
	SimsPerSec float64 `json:"sims_per_sec,omitempty"`
	// RowsPerSec is the row throughput for batched-inference benchmarks.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
}

// Report is the whole run, with enough machine context to make cross-commit
// comparisons honest.
type Report struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Quick      bool      `json:"quick"`
	Timestamp  time.Time `json:"timestamp"`
	Results    []Result  `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spear-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out   = flag.String("out", "BENCH_spear.json", "path to write the JSON report")
		quick = flag.Bool("quick", false, "shrink problem sizes for a smoke run (CI)")
	)
	flag.Parse()

	feat := drl.Features{Window: 5, Horizon: 10, Dims: 2}
	net, err := drl.DefaultNetwork(feat, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	agent, err := drl.NewAgent(net, feat, false)
	if err != nil {
		return err
	}

	tasks, budget, minBudget := 30, 40, 10
	batchRows := 16
	if *quick {
		tasks, budget, minBudget = 15, 10, 5
		batchRows = 8
	}
	g, err := workload.RandomBatch(rand.New(rand.NewSource(1)), workload.RandomDAGConfig{
		NumTasks: tasks, MinWidth: 2, MaxWidth: 5, Dims: 2,
		MaxRuntime: 20, MaxDemand: 20, MaxParents: 3,
	}, 1)
	if err != nil {
		return err
	}
	graph := g[0]
	capacity := workload.DefaultRandomDAGConfig().Capacity()

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Timestamp:  time.Now().UTC(),
	}

	// Single-row inference: the per-step cost of every rollout action.
	{
		scratch := net.NewScratch()
		in := net.InputSize()
		x := make([]float64, in)
		for i := range x {
			x[i] = float64(i%7) * 0.1
		}
		report.Results = append(report.Results, measure("nn_forward_single", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.ForwardInto(scratch, x); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Batched inference: the root-parallel / lock-step rollout fast path.
	{
		scratch := net.NewScratch()
		in := net.InputSize()
		x := make([]float64, batchRows*in)
		for i := range x {
			x[i] = float64(i%11) * 0.05
		}
		report.Results = append(report.Results, measure("nn_forward_batch", batchRows, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.ForwardBatchInto(scratch, x, batchRows); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Batched backprop: the REINFORCE gradient chunk.
	{
		scratch := net.NewScratch()
		in, out := net.InputSize(), net.OutputSize()
		x := make([]float64, batchRows*in)
		d := make([]float64, batchRows*out)
		for i := range x {
			x[i] = float64(i%11) * 0.05
		}
		for i := range d {
			d[i] = float64(i%5-2) * 0.01
		}
		grads := net.NewGrads()
		report.Results = append(report.Results, measure("nn_backward_batch", batchRows, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.ForwardBatchInto(scratch, x, batchRows); err != nil {
					b.Fatal(err)
				}
				if err := net.BackwardBatchInto(scratch, d, batchRows, grads); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// The MCTS decision loop with DRL rollouts at increasing root
	// parallelism. SimsPerSec here is the acceptance metric: on a >=4-core
	// machine K=4 should reach >=1.8x the K=1 rate.
	for _, k := range []int{1, 2, 4} {
		s := mcts.New(mcts.Config{
			InitialBudget: budget, MinBudget: minBudget, Seed: 1,
			Rollout: agent, Window: feat.Window,
			RootParallelism: k,
		})
		var rollouts int64
		var elapsed float64
		r := measure(fmt.Sprintf("mcts_schedule_root_k%d", k), 0, func(b *testing.B) {
			rollouts, elapsed = 0, 0
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(graph, cluster.Single(capacity)); err != nil {
					b.Fatal(err)
				}
				st := s.LastStats()
				rollouts += st.Rollouts
				elapsed += st.Elapsed.Seconds()
			}
		})
		if elapsed > 0 {
			r.SimsPerSec = float64(rollouts) / elapsed
		}
		report.Results = append(report.Results, r)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	for _, r := range report.Results {
		fmt.Printf("%-28s %12.0f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.SimsPerSec > 0 {
			fmt.Printf(" %10.0f sims/s", r.SimsPerSec)
		}
		if r.RowsPerSec > 0 {
			fmt.Printf(" %10.0f rows/s", r.RowsPerSec)
		}
		fmt.Println()
	}
	fmt.Printf("report written to %s\n", *out)
	return nil
}

// measure runs one benchmark body through the standard library's timing
// machinery and converts the result. rows > 0 derives RowsPerSec for batch
// kernels.
func measure(name string, rows int, body func(b *testing.B)) Result {
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		body(b)
	})
	r := Result{
		Name:        name,
		Iterations:  br.N,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
	if rows > 0 && br.NsPerOp() > 0 {
		r.RowsPerSec = float64(rows) / (float64(br.NsPerOp()) * 1e-9)
	}
	return r
}
