// Command spear-experiments regenerates the tables and figures of the
// paper's evaluation section (§V). Each experiment prints the same
// rows/series the paper reports; see DESIGN.md for the experiment index.
//
// Usage:
//
//	spear-experiments -list
//	spear-experiments -run fig6a
//	spear-experiments -run all -full -model model.gob
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spear"
	"spear/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spear-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runName   = flag.String("run", "all", "experiment to run (or 'all')")
		list      = flag.Bool("list", false, "list experiments and exit")
		full      = flag.Bool("full", false, "use paper-scale parameters (slow)")
		seed      = flag.Int64("seed", 1, "random seed")
		modelPath = flag.String("model", "", "trained model (trains one on demand when empty)")
		verbose   = flag.Bool("v", false, "log per-job progress")
		csvDir    = flag.String("csv-dir", "", "also write each experiment's raw data as CSV into this directory")
		metrics   = flag.Bool("metrics", false, "print a Prometheus-format metrics snapshot after the run")
		jobs      = flag.Int("j", 1, "run independent experiment cells on this many workers (reports still print in paper order)")
		rootPar   = flag.Int("root-parallel", 1, "root-parallel MCTS trees per decision in every search-based scheduler")
		treePar   = flag.Int("tree-parallel", 1, "shared-tree workers per MCTS tree in every search-based scheduler")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", r.Name, r.Description)
		}
		return nil
	}

	suite := experiments.NewSuite(*seed)
	suite.Full = *full
	suite.RootParallelism = *rootPar
	suite.TreeParallelism = *treePar
	if *verbose {
		suite.Log = os.Stderr
	}
	if *metrics {
		// One shared registry: every scheduler the suite builds aggregates
		// into it, and the snapshot below covers the whole run.
		suite.Obs = spear.NewMetricsRegistry()
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		net, err := spear.LoadModel(f)
		f.Close() //spear:ignoreerr(read-only close after a completed load)
		if err != nil {
			return err
		}
		feat := spear.DefaultFeatures()
		if net.InputSize() != feat.InputSize() {
			return fmt.Errorf("model %s does not match the default featurization", *modelPath)
		}
		suite.Net = net
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	runOne := func(r experiments.Runner) error {
		if err := r.Run(suite, os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		if *csvDir == "" || r.CSV == nil {
			return nil
		}
		path := filepath.Join(*csvDir, r.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := r.CSV(suite, f); err != nil {
			return errors.Join(fmt.Errorf("%s csv: %w", r.Name, err), f.Close())
		}
		return f.Close()
	}

	dumpMetrics := func() {
		if suite.Obs == nil {
			return
		}
		fmt.Println("==== metrics ====")
		if err := suite.Obs.Snapshot().WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "spear-experiments: metrics:", err)
		}
	}

	if *jobs > 1 {
		names := experiments.Names()
		if *runName != "all" {
			names = []string{*runName}
		}
		opt := experiments.ParallelOptions{Jobs: *jobs}
		if *csvDir != "" {
			opt.CSV = func(name string) (io.WriteCloser, error) {
				return os.Create(filepath.Join(*csvDir, name+".csv"))
			}
		}
		snap, err := suite.RunParallel(names, opt, os.Stdout)
		if err != nil {
			return err
		}
		if *metrics {
			fmt.Println("==== metrics ====")
			return snap.WritePrometheus(os.Stdout)
		}
		return nil
	}

	if *runName != "all" {
		for _, r := range experiments.Registry() {
			if r.Name == *runName {
				if err := runOne(r); err != nil {
					return err
				}
				dumpMetrics()
				return nil
			}
		}
		return fmt.Errorf("unknown experiment %q", *runName)
	}
	for _, r := range experiments.Registry() {
		fmt.Printf("==== %s ====\n", r.Name)
		if err := runOne(r); err != nil {
			return err
		}
		fmt.Println()
	}
	dumpMetrics()
	return nil
}
