// Command spear-serve runs the online multi-job serving loop: jobs arrive
// on a simulated clock from per-class arrival processes, pass admission
// control, and are planned onto a shared cluster timeline by the chosen
// scheduling algorithm. The run log is a pure function of the seed, so
// re-running a written log reproduces it byte for byte.
//
// Usage:
//
//	spear-serve -seed 7 -horizon 2000 -algo cp -out run.json
//	spear-serve -seed 7 -machines 4 -algo tetris    # 4-machine cluster
//	spear-serve -replay run.json            # re-execute and diff byte-wise
//	spear-serve -seed 7 -admission token-bucket -bucket-cap 4 -bucket-refill 0.05
//	spear-serve -seed 7 -class gold:poisson:120 -class batch:gamma:40:0.4 -metrics
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spear/internal/anneal"
	"spear/internal/baselines"
	"spear/internal/mcts"
	"spear/internal/obs"
	"spear/internal/sched"
	"spear/internal/serve"
	"spear/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spear-serve:", err)
		os.Exit(1)
	}
}

type classFlags []string

func (c *classFlags) String() string { return strings.Join(*c, ",") }
func (c *classFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func run() error {
	var classes classFlags
	var (
		seed         = flag.Int64("seed", 1, "run seed; fully determines the run")
		horizon      = flag.Int64("horizon", 2000, "last slot at which jobs may arrive")
		algo         = flag.String("algo", "cp", "scheduling algorithm (cp,tetris,sjf,graphene,level,random,anneal,mcts)")
		searchBudget = flag.Int("search-budget", 200, "per-decision iteration budget for -algo mcts")
		treePar      = flag.Int("tree-parallel", 1, "shared-tree search workers for -algo mcts (>1 speeds planning but forfeits replay byte-identity)")
		admission    = flag.String("admission", "always", "admission policy (always,token-bucket)")
		bucketCap    = flag.Float64("bucket-cap", 8, "token-bucket burst capacity in jobs")
		bucketRefill = flag.Float64("bucket-refill", 0.02, "token-bucket refill rate in jobs per slot")
		maxInFlight  = flag.Int("max-inflight", 0, "max planned-but-unfinished jobs (0 = unbounded)")
		machines     = flag.Int("machines", 1, "number of identical machines in the serving cluster")
		dumpPlans    = flag.Bool("dump-schedules", false, "embed each committed plan's schedule in its plan event")
		budget       = flag.Duration("decision-timeout", 0, "wall-clock budget per planning call (0 = unbounded)")
		out          = flag.String("out", "", "write the run log to this file")
		replay       = flag.String("replay", "", "re-execute the run recorded in this log and diff byte-wise")
		metrics      = flag.Bool("metrics", false, "print a Prometheus-format metrics snapshot after the run")
		quiet        = flag.Bool("quiet", false, "suppress the summary table")
	)
	flag.Var(&classes, "class", "client class as name[@tenant]:kind:mean[:shape] (repeatable; default gold+batch mix)")
	flag.Parse()

	if *replay != "" {
		return replayRun(*replay, *metrics)
	}

	if *machines < 1 {
		return fmt.Errorf("machines %d must be >= 1", *machines)
	}
	cfg := serve.Config{
		Seed:           *seed,
		Horizon:        *horizon,
		MaxInFlight:    *maxInFlight,
		Algorithm:      *algo,
		DecisionBudget: *budget,
		Admission:      serve.AdmissionConfig{Policy: *admission, BucketCap: *bucketCap, RefillPerSlot: *bucketRefill},
		DumpSchedules:  *dumpPlans,
	}
	if *machines > 1 {
		// A 1-machine cluster is the config's zero value; leaving it absent
		// keeps old run logs byte-identical.
		cfg.Machines = *machines
	}
	if *algo == "mcts" {
		// Recorded only for the search algorithm, so baseline run logs stay
		// byte-identical to older builds.
		cfg.SearchBudget = *searchBudget
		cfg.TreeParallel = *treePar
	}
	if cfg.Admission.Policy == serve.PolicyAlways {
		cfg.Admission.BucketCap, cfg.Admission.RefillPerSlot = 0, 0
	}
	var err error
	if cfg.Classes, err = parseClasses(classes); err != nil {
		return err
	}

	scheduler, err := buildScheduler(cfg)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	srv, err := serve.New(cfg, scheduler, reg)
	if err != nil {
		return err
	}
	log, err := srv.Run()
	if err != nil {
		return err
	}
	if *out != "" {
		data, err := log.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}
	if !*quiet {
		printSummary(log)
	}
	if *metrics {
		fmt.Println()
		if err := reg.Snapshot().WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// replayRun re-executes the run embedded in the log at path and compares
// the two logs byte for byte.
func replayRun(path string, metrics bool) error {
	orig, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	log, err := serve.LoadRunLog(bytes.NewReader(orig))
	if err != nil {
		return err
	}
	scheduler, err := buildScheduler(log.Config)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	replayed, err := serve.Replay(log.Config, scheduler, reg)
	if err != nil {
		return err
	}
	data, err := replayed.Marshal()
	if err != nil {
		return err
	}
	if !bytes.Equal(orig, data) {
		return fmt.Errorf("replay of %s diverged from the recorded log (%d vs %d bytes)", path, len(data), len(orig))
	}
	fmt.Printf("replay of %s reproduced the recorded log byte-identically (%d events)\n", path, len(log.Events))
	if metrics {
		fmt.Println()
		return reg.Snapshot().WritePrometheus(os.Stdout)
	}
	return nil
}

// parseClasses parses repeated -class specs "name[@tenant]:kind:mean[:shape]".
// No specs selects a default gold+batch mix.
func parseClasses(specs []string) ([]serve.ClassConfig, error) {
	if len(specs) == 0 {
		return []serve.ClassConfig{
			{Name: "gold", Tenant: "gold", Arrival: workload.ArrivalConfig{Kind: workload.ArrivalPoisson, Mean: 150}},
			{Name: "batch", Tenant: "batch", Arrival: workload.ArrivalConfig{Kind: workload.ArrivalGamma, Mean: 250, Shape: 0.5}},
		}, nil
	}
	out := make([]serve.ClassConfig, 0, len(specs))
	for _, spec := range specs {
		parts := strings.Split(spec, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("class %q: want name[@tenant]:kind:mean[:shape]", spec)
		}
		cc := serve.ClassConfig{Name: parts[0]}
		if name, tenant, ok := strings.Cut(parts[0], "@"); ok {
			cc.Name, cc.Tenant = name, tenant
		}
		cc.Arrival.Kind = workload.ArrivalKind(parts[1])
		mean, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("class %q: mean: %w", spec, err)
		}
		cc.Arrival.Mean = mean
		if len(parts) == 4 {
			shape, err := strconv.ParseFloat(parts[3], 64)
			if err != nil {
				return nil, fmt.Errorf("class %q: shape: %w", spec, err)
			}
			cc.Arrival.Shape = shape
		}
		out = append(out, cc)
	}
	return out, nil
}

func printSummary(log *serve.RunLog) {
	s := log.Summary
	fmt.Printf("horizon=%d final_clock=%d arrivals=%d admitted=%d rejected=%d completed=%d jain=%.4f\n",
		log.Config.Horizon, s.FinalClock, s.Arrivals, s.Admitted, s.Rejected, s.Completed, s.JainFairness)
	for _, cs := range s.Classes {
		fmt.Printf("  class=%-8s tenant=%-8s arrivals=%-4d rejected=%-4d completed=%-4d mean_jct=%-8.1f mean_queue_delay=%-7.1f mean_stretch=%-6.2f jain=%.4f\n",
			cs.Class, cs.Tenant, cs.Arrivals, cs.Rejected, cs.Completed, cs.MeanJCT, cs.MeanQueueDelay, cs.MeanStretch, cs.Jain)
	}
}

// buildScheduler constructs the scheduler the config names. "mcts" is
// iteration-budgeted (never wall-clock-budgeted), so a run is a pure
// function of the seed like the baselines — with the caveat that
// TreeParallel > 1 interleaves search iterations nondeterministically and
// forfeits the replay guarantee. The model-guided spear algorithm stays
// excluded: its plans depend on network weights the log does not record.
func buildScheduler(cfg serve.Config) (sched.Scheduler, error) {
	switch cfg.Algorithm {
	case "cp":
		return baselines.NewCPScheduler(), nil
	case "tetris":
		return baselines.NewTetrisScheduler(), nil
	case "sjf":
		return baselines.NewSJFScheduler(), nil
	case "graphene":
		return baselines.NewGrapheneScheduler(), nil
	case "level":
		return baselines.NewLevelByLevelScheduler(), nil
	case "random":
		return baselines.NewRandomScheduler(cfg.Seed), nil
	case "anneal":
		return anneal.New(anneal.Config{Iterations: 500, Seed: cfg.Seed}), nil
	case "mcts":
		budget := cfg.SearchBudget
		if budget <= 0 {
			budget = 200
		}
		return mcts.New(mcts.Config{
			InitialBudget:   budget,
			MinBudget:       budget / 10,
			Seed:            cfg.Seed,
			TreeParallelism: cfg.TreeParallel,
		}), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", cfg.Algorithm)
	}
}
