// Command spear-train runs the paper's training pipeline — supervised
// warm-start imitating the critical-path heuristic, then REINFORCE with an
// averaged-rollout baseline — and saves the policy network for use by
// spear-sim and spear-experiments.
//
// Usage:
//
//	spear-train -out model.gob -train-jobs 144 -epochs 300 -rollouts 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"spear"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spear-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out            = flag.String("out", "model.gob", "path to write the trained model")
		trainJobs      = flag.Int("train-jobs", 16, "number of generated training jobs (paper: 144)")
		tasksPerJob    = flag.Int("tasks", 25, "tasks per training job (paper: 25)")
		pretrainEpochs = flag.Int("pretrain-epochs", 12, "supervised warm-start epochs")
		epochs         = flag.Int("epochs", 60, "REINFORCE epochs (paper: 7000)")
		rollouts       = flag.Int("rollouts", 20, "rollouts per example for the baseline (paper: 20)")
		workers        = flag.Int("workers", 0, "rollout/backprop worker goroutines (0 = GOMAXPROCS)")
		seed           = flag.Int64("seed", 1, "random seed")
		window         = flag.Int("window", 15, "ready-task window (paper: 15)")
		horizon        = flag.Int("horizon", 20, "occupancy horizon in slots (paper: 20)")
		quiet          = flag.Bool("q", false, "suppress per-epoch progress")
		curvePath      = flag.String("curve", "", "write the learning curve as CSV to this path")
		ckptEvery      = flag.Int("checkpoint-every", 0, "save the model to -out every N epochs (0 = only at the end)")
		metrics        = flag.Bool("metrics", false, "print a Prometheus-format training metrics snapshot after the run")
		evalJobs       = flag.Int("eval", 0, "after training, run guided search on this many held-out jobs and report mean makespan")
		evalBudget     = flag.Int("eval-budget", 100, "search budget per decision for -eval")
		treePar        = flag.Int("tree-parallel", 1, "shared-tree search workers per tree for -eval")
	)
	flag.Parse()

	feat := spear.Features{Window: *window, Horizon: *horizon, Dims: 2}
	reinforce := spear.ReinforceConfig{Epochs: *epochs, Rollouts: *rollouts, Workers: *workers}
	if *ckptEvery > 0 {
		reinforce.CheckpointEvery = *ckptEvery
		reinforce.Checkpoint = func(epoch int, net *spear.Network) error {
			if err := writeModel(*out, net); err != nil {
				return err
			}
			if !*quiet {
				fmt.Printf("checkpoint after epoch %d -> %s\n", epoch, *out)
			}
			return nil
		}
	}
	cfg := spear.ModelConfig{
		Feat:         feat,
		TrainJobs:    *trainJobs,
		TasksPerJob:  *tasksPerJob,
		PretrainCfg:  spear.PretrainConfig{Epochs: *pretrainEpochs},
		ReinforceCfg: reinforce,
		Seed:         *seed,
	}
	var tm *spear.TrainMetrics
	if *metrics {
		tm = spear.NewTrainMetrics(nil)
		cfg.Metrics = tm
	}
	progress := func(st spear.EpochStats) {
		if !*quiet {
			fmt.Printf("epoch %4d: mean makespan %8.1f (min %d, max %d)\n",
				st.Epoch, st.MeanMakespan, st.MinMakespan, st.MaxMakespan)
		}
	}

	net, curve, _, err := spear.TrainModel(cfg, progress)
	if err != nil {
		return err
	}
	if len(curve) > 0 {
		first, last := curve[0], curve[len(curve)-1]
		fmt.Printf("learning curve: %.1f -> %.1f over %d epochs\n", first.MeanMakespan, last.MeanMakespan, len(curve))
	}
	if *curvePath != "" {
		f, err := os.Create(*curvePath)
		if err != nil {
			return err
		}
		if err := spear.WriteCurveCSV(f, curve); err != nil {
			return errors.Join(err, f.Close())
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("learning curve written to %s\n", *curvePath)
	}

	if err := writeModel(*out, net); err != nil {
		return err
	}
	fmt.Printf("model written to %s (window=%d horizon=%d)\n", *out, *window, *horizon)
	if *evalJobs > 0 {
		if err := evalModel(net, feat, *evalJobs, *tasksPerJob, *evalBudget, *treePar, *seed); err != nil {
			return err
		}
	}
	if tm != nil {
		st := tm.Stats()
		fmt.Printf("training: %d trajectories, %d steps, %d updates, mean grad norm %.4g, mean baseline spread %.1f\n",
			st.Trajectories, st.Steps, st.GradUpdates, st.MeanGradNorm, st.MeanBaselineSpread)
		if err := tm.Snapshot().WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// evalModel runs the freshly trained model through the guided search on
// held-out jobs (a seed offset past the training set) and prints the mean
// makespan and search rate — a quick smoke signal that the model actually
// helps before it is shipped to spear-sim/spear-experiments. treePar sets
// the shared-tree worker count of each search.
func evalModel(net *spear.Network, feat spear.Features, jobs, tasks, budget, treePar int, seed int64) error {
	scheduler, err := spear.NewSpear(net, feat, spear.SpearConfig{
		InitialBudget:   budget,
		MinBudget:       budget / 10,
		Seed:            seed,
		TreeParallelism: treePar,
	})
	if err != nil {
		return err
	}
	wcfg := spear.DefaultRandomJobConfig()
	wcfg.NumTasks = tasks
	var totalSpan, totalSims float64
	for i := 0; i < jobs; i++ {
		job, err := spear.RandomJob(seed+int64(1000+i), wcfg)
		if err != nil {
			return err
		}
		out, err := scheduler.Schedule(job, spear.SingleMachine(wcfg.Capacity()))
		if err != nil {
			return err
		}
		totalSpan += float64(out.Makespan)
		totalSims += scheduler.LastStats().SimsPerSec
	}
	fmt.Printf("eval: %d held-out jobs, mean makespan %.1f, mean %.0f sims/sec (tree-parallel %d)\n",
		jobs, totalSpan/float64(jobs), totalSims/float64(jobs), treePar)
	return nil
}

// writeModel atomically-enough saves the network: write then close, so a
// failed write surfaces as an error instead of a silently truncated model.
func writeModel(path string, net *spear.Network) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spear.SaveModel(f, net); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
