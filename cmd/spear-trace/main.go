// Command spear-trace generates and inspects the synthetic production
// MapReduce trace that substitutes for the paper's proprietary 99-job Hive
// trace (§V-C); the generator is calibrated to every statistic the paper
// reports.
//
// Usage:
//
//	spear-trace -out trace.json
//	spear-trace -in trace.json -stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"spear"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spear-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out   = flag.String("out", "", "write a freshly generated trace to this path")
		in    = flag.String("in", "", "read an existing trace instead of generating one")
		seed  = flag.Int64("seed", 2019, "generation seed")
		stats = flag.Bool("stats", true, "print the trace's summary statistics")
	)
	flag.Parse()

	var trace *spear.Trace
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close() //spear:ignoreerr(read-only file; a close error loses no data)
		trace, err = spear.LoadTrace(f)
		if err != nil {
			return err
		}
	} else {
		var err error
		trace, err = spear.GenerateTrace(*seed, spear.DefaultTraceConfig())
		if err != nil {
			return err
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := trace.Save(f); err != nil {
			return errors.Join(err, f.Close())
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace with %d jobs written to %s\n", len(trace.Jobs), *out)
	}

	if *stats {
		s := trace.Stats()
		fmt.Printf("jobs: %d\n", s.Jobs)
		fmt.Printf("map tasks per job:    median %d, max %d (paper: 14, 29)\n", s.MedianMaps, s.MaxMaps)
		fmt.Printf("reduce tasks per job: median %d, max %d (paper: 17, 38)\n", s.MedianReduces, s.MaxReduces)
		fmt.Printf("map task runtime:     median %d (paper: 73)\n", s.MedianMapRT)
		fmt.Printf("reduce task runtime:  median %d (paper: 32)\n", s.MedianReduceRT)
		fmt.Printf("max mean reduce runtime per job: %.0f (paper: up to 141)\n", s.MaxMeanRedRT)
	}
	return nil
}
